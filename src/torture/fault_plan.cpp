#include "torture/fault_plan.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "net/msg_kind.hpp"
#include "sim/random.hpp"

namespace tw::torture {

namespace {

/// Message kinds the targeted one-shot rules draw from: the control and
/// data traffic whose loss/duplication/corruption stresses distinct
/// protocol paths.
constexpr std::uint8_t kRuleKinds[] = {
    net::kind_byte(net::MsgKind::proposal),
    net::kind_byte(net::MsgKind::decision),
    net::kind_byte(net::MsgKind::no_decision),
    net::kind_byte(net::MsgKind::join),
    net::kind_byte(net::MsgKind::reconfiguration),
    net::kind_byte(net::MsgKind::state_transfer),
    net::kind_byte(net::MsgKind::clocksync_reply),
};

std::uint8_t pick_kind(sim::Rng& rng) {
  const auto i = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(std::size(kRuleKinds)) - 1));
  return kRuleKinds[i];
}

}  // namespace

const char* fault_type_name(FaultType t) {
  switch (t) {
    case FaultType::crash: return "crash";
    case FaultType::recover: return "recover";
    case FaultType::stall: return "stall";
    case FaultType::partition: return "partition";
    case FaultType::heal: return "heal";
    case FaultType::drop_rule: return "drop";
    case FaultType::delay_rule: return "delay";
    case FaultType::duplicate_rule: return "duplicate";
    case FaultType::corrupt_rule: return "corrupt";
    case FaultType::clock_step: return "clock_step";
    case FaultType::clock_drift: return "clock_drift";
    case FaultType::set_model: return "set_model";
    case FaultType::clear_rules: return "clear_rules";
    case FaultType::store_torn: return "store_torn";
    case FaultType::store_flip: return "store_flip";
    case FaultType::store_fsync: return "store_fsync";
    case FaultType::flap: return "flap";
    case FaultType::oneway: return "oneway";
    case FaultType::slow_receiver: return "slow_receiver";
  }
  return "?";
}

std::string FaultOp::to_string() const {
  std::ostringstream os;
  os << "t=" << std::fixed << std::setprecision(3) << sim::to_sec(at) << "s "
     << fault_type_name(type);
  switch (type) {
    case FaultType::crash:
    case FaultType::recover:
      os << " p" << p;
      break;
    case FaultType::stall:
      os << " p" << p << " for " << sim::to_ms(dur) << "ms";
      break;
    case FaultType::partition:
      os << " majority side " << targets.to_string();
      break;
    case FaultType::heal:
    case FaultType::clear_rules:
      break;
    case FaultType::drop_rule:
    case FaultType::duplicate_rule:
    case FaultType::corrupt_rule:
      os << " from p" << p << " kind=" << static_cast<int>(kind) << " to "
         << targets.to_string() << " x" << count;
      break;
    case FaultType::delay_rule:
      os << " from p" << p << " kind=" << static_cast<int>(kind) << " to "
         << targets.to_string() << " x" << count << " +" << sim::to_ms(dur)
         << "ms";
      break;
    case FaultType::clock_step:
      os << " p" << p << " by " << sim::to_ms(step) << "ms";
      break;
    case FaultType::clock_drift:
      os << " p" << p << " rate=" << drift;
      break;
    case FaultType::set_model:
      os << " dup=" << model.dup_prob << " reorder=" << model.reorder_prob
         << " corrupt=" << model.corrupt_prob;
      break;
    case FaultType::store_torn:
      os << " p" << p << " x" << count << " keep " << static_cast<int>(kind)
         << "%";
      break;
    case FaultType::store_flip:
      os << " p" << p << (kind == 0 ? " log" : " snap") << " bit " << step;
      break;
    case FaultType::store_fsync:
      os << " p" << p << " x" << count;
      break;
    case FaultType::flap:
      os << " side " << targets.to_string() << " x" << count << " every "
         << sim::to_ms(dur) << "ms";
      break;
    case FaultType::oneway:
      os << " p" << p << (kind != 0 ? " deaf to " : " mute towards ")
         << targets.to_string();
      break;
    case FaultType::slow_receiver:
      os << " p" << p << " at " << static_cast<int>(kind) << "% for "
         << sim::to_ms(dur) << "ms";
      break;
  }
  return os.str();
}

FaultPlan generate_plan(const TortureConfig& cfg, std::uint64_t seed) {
  FaultPlan plan;
  plan.cfg = cfg;
  plan.seed = seed;
  // A dedicated stream: the harness's own RNG (delays, sched) uses `seed`
  // directly, so keep the plan stream decorrelated.
  sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x7075);

  const auto n = static_cast<ProcessId>(cfg.n);
  const int majority = cfg.n / 2 + 1;
  const util::ProcessSet everyone = util::ProcessSet::full(n);

  // Ambient model while faults are active (gated by the family toggles).
  sim::NetFaultModel ambient;
  if (cfg.duplication) ambient.dup_prob = cfg.model.dup_prob;
  if (cfg.reordering) ambient.reorder_prob = cfg.model.reorder_prob;
  if (cfg.corruption) ambient.corrupt_prob = cfg.model.corrupt_prob;
  if (ambient.active()) {
    FaultOp on;
    on.at = cfg.fault_start;
    on.type = FaultType::set_model;
    on.model = ambient;
    on.structural = true;
    plan.ops.push_back(on);
  }

  // Liveness bookkeeping: the paper's §3 guarantees assume a majority of
  // knowledge-holders survives (see gms_property_test), so crashes are
  // gated on a veteran majority and partitions always keep a majority side.
  std::vector<bool> up(static_cast<std::size_t>(cfg.n), true);
  std::vector<sim::SimTime> up_since(static_cast<std::size_t>(cfg.n), 0);
  std::vector<bool> drifted(static_cast<std::size_t>(cfg.n), false);
  int up_count = cfg.n;
  const sim::Duration veteran_age = sim::sec(5);
  auto veterans = [&](sim::SimTime at, ProcessId excluding) {
    int count = 0;
    for (ProcessId q = 0; q < n; ++q)
      if (q != excluding && up[q] && at - up_since[q] >= veteran_age) ++count;
    return count;
  };

  // A uniformly random majority-sized side drawn from the live processes
  // (partition, flap and the heal-during-state-transfer composite all keep
  // the §3 failure assumption by construction).
  auto majority_side = [&] {
    std::vector<ProcessId> ups;
    for (ProcessId q = 0; q < n; ++q)
      if (up[q]) ups.push_back(q);
    for (std::size_t i = ups.size(); i > 1; --i)
      std::swap(ups[i - 1],
                ups[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    util::ProcessSet side;
    for (int i = 0; i < majority; ++i)
      side.insert(ups[static_cast<std::size_t>(i)]);
    return side;
  };

  sim::SimTime partitioned_until = -1;
  sim::SimTime t = cfg.fault_start;
  for (;;) {
    t += rng.uniform_int(sim::msec(150), sim::msec(1200));
    if (t >= cfg.fault_end) break;
    FaultOp op;
    op.at = t;
    const auto p = static_cast<ProcessId>(rng.uniform_int(0, cfg.n - 1));
    switch (rng.uniform_int(0, 16)) {
      case 0:
      case 1:  // crash, if the failure assumption allows it
        if (cfg.crashes && up[p] && t >= partitioned_until &&
            up_count - 1 >= majority && veterans(t, p) >= majority) {
          op.type = FaultType::crash;
          op.p = p;
          up[p] = false;
          --up_count;
          plan.ops.push_back(op);
        }
        break;
      case 2:
      case 3:  // recover a downed process
        if (!up[p]) {
          op.type = FaultType::recover;
          op.p = p;
          up[p] = true;
          up_since[p] = t;
          ++up_count;
          plan.ops.push_back(op);
        }
        break;
      case 4:  // stall past sigma
        if (cfg.stalls && up[p]) {
          op.type = FaultType::stall;
          op.p = p;
          op.dur = rng.uniform_int(sim::msec(5), sim::msec(60));
          plan.ops.push_back(op);
        }
        break;
      case 5:  // partition with a majority side, healed shortly after
        if (cfg.partitions && t >= partitioned_until &&
            up_count >= majority) {
          op.type = FaultType::partition;
          op.targets = majority_side();
          plan.ops.push_back(op);
          FaultOp heal;
          heal.at = std::min(t + rng.uniform_int(sim::msec(500),
                                                 sim::msec(2500)),
                             cfg.fault_end);
          heal.type = FaultType::heal;
          plan.ops.push_back(heal);
          partitioned_until = heal.at;
        }
        break;
      case 6:  // targeted drop burst
      case 7:
        if (cfg.drops) {
          op.type = FaultType::drop_rule;
          op.p = p;
          op.kind = pick_kind(rng);
          op.targets = everyone;
          op.count = static_cast<int>(rng.uniform_int(1, 4));
          plan.ops.push_back(op);
        }
        break;
      case 8:  // targeted duplicate burst
        if (cfg.duplication) {
          op.type = FaultType::duplicate_rule;
          op.p = p;
          op.kind = pick_kind(rng);
          op.targets = everyone;
          op.count = static_cast<int>(rng.uniform_int(1, 4));
          plan.ops.push_back(op);
        }
        break;
      case 9:  // targeted corruption burst
        if (cfg.corruption) {
          op.type = FaultType::corrupt_rule;
          op.p = p;
          op.kind = pick_kind(rng);
          op.targets = everyone;
          op.count = static_cast<int>(rng.uniform_int(1, 4));
          plan.ops.push_back(op);
        }
        break;
      case 10:  // stable-storage fault (torn append / bit flip / fsync)
        if (cfg.store_faults) {
          switch (rng.uniform_int(0, 2)) {
            case 0:
              op.type = FaultType::store_torn;
              op.count = static_cast<int>(rng.uniform_int(1, 3));
              op.kind = static_cast<std::uint8_t>(rng.uniform_int(10, 90));
              break;
            case 1:
              op.type = FaultType::store_flip;
              // Mostly attack the log (it grows continuously); sometimes
              // the snapshot, forcing the open-time fallback paths.
              op.kind = rng.chance(0.3) ? 1 : 0;
              op.step = rng.uniform_int(0, 1 << 20);  // mod file bits
              break;
            default:
              op.type = FaultType::store_fsync;
              op.count = static_cast<int>(rng.uniform_int(1, 4));
              break;
          }
          op.p = p;
          plan.ops.push_back(op);
        }
        break;
      case 11:  // hardware-clock step
        if (cfg.clock_faults && up[p]) {
          op.type = FaultType::clock_step;
          op.p = p;
          op.step = rng.uniform_int(sim::msec(1), sim::msec(120));
          if (rng.chance(0.5)) op.step = -op.step;
          plan.ops.push_back(op);
        }
        break;
      case 12:  // flapping partition: the same cut opens and heals x count
        if (cfg.partitions && t >= partitioned_until &&
            up_count >= majority) {
          const int cycles = static_cast<int>(rng.uniform_int(2, 4));
          const sim::Duration period =
              rng.uniform_int(sim::msec(300), sim::msec(900));
          const auto flap_end =
              t + static_cast<sim::SimTime>(cycles) * period;
          if (flap_end < cfg.fault_end) {
            op.type = FaultType::flap;
            op.targets = majority_side();
            op.count = cycles;
            op.dur = period;
            plan.ops.push_back(op);
            partitioned_until = flap_end;
          }
        }
        break;
      case 13:  // asymmetric cut: p keeps sending but goes deaf (or mute)
        if (cfg.partitions && up[p] && t >= partitioned_until &&
            up_count >= majority) {
          op.type = FaultType::oneway;
          op.p = p;
          op.kind = rng.chance(0.5) ? 1 : 0;
          op.targets = everyone.minus(util::ProcessSet{p});
          plan.ops.push_back(op);
          FaultOp heal;
          heal.at = std::min(t + rng.uniform_int(sim::msec(400),
                                                 sim::msec(1800)),
                             cfg.fault_end);
          heal.type = FaultType::heal;
          plan.ops.push_back(heal);
          partitioned_until = heal.at;
        }
        break;
      case 14:  // recover straight into a cut that heals mid state-transfer
        if (cfg.partitions && !up[p] && t >= partitioned_until) {
          op.type = FaultType::recover;
          op.p = p;
          up[p] = true;
          up_since[p] = t;
          ++up_count;
          plan.ops.push_back(op);
          const auto cut_at =
              t + rng.uniform_int(sim::msec(100), sim::msec(400));
          if (up_count >= majority && cut_at < cfg.fault_end) {
            FaultOp cut;
            cut.at = cut_at;
            cut.type = FaultType::partition;
            cut.targets = majority_side();
            plan.ops.push_back(cut);
            FaultOp heal;
            heal.at = std::min(cut.at + rng.uniform_int(sim::msec(300),
                                                        sim::msec(1200)),
                               cfg.fault_end);
            heal.type = FaultType::heal;
            plan.ops.push_back(heal);
            partitioned_until = heal.at;
          }
        }
        break;
      case 15:  // slow receiver: alive but draining at a fraction of rate
        if (cfg.slow_receivers && up[p]) {
          op.type = FaultType::slow_receiver;
          op.p = p;
          op.kind = static_cast<std::uint8_t>(rng.uniform_int(10, 90));
          op.dur = std::min<sim::Duration>(
              rng.uniform_int(sim::msec(300), sim::msec(2000)),
              std::max<sim::Duration>(1, cfg.fault_end - t));
          plan.ops.push_back(op);
        }
        break;
      default:  // hardware-clock drift change
        if (cfg.clock_faults && up[p]) {
          op.type = FaultType::clock_drift;
          op.p = p;
          op.drift = rng.uniform_real(2e-5, 3e-4);
          if (rng.chance(0.5)) op.drift = -op.drift;
          drifted[p] = true;
          plan.ops.push_back(op);
        }
        break;
    }
  }

  // Epilogue (structural): stop all fault sources at fault_end so the team
  // can converge — heal links, disarm rules, ambient model off, recover
  // everyone, restore sane drift rates.
  auto structural = [&](FaultType type) {
    FaultOp op;
    op.at = cfg.fault_end;
    op.type = type;
    op.structural = true;
    return op;
  };
  plan.ops.push_back(structural(FaultType::heal));
  plan.ops.push_back(structural(FaultType::clear_rules));
  if (ambient.active()) plan.ops.push_back(structural(FaultType::set_model));
  for (ProcessId q = 0; q < n; ++q) {
    if (!up[q]) {
      FaultOp op = structural(FaultType::recover);
      op.p = q;
      plan.ops.push_back(op);
    }
    if (drifted[q]) {
      FaultOp op = structural(FaultType::clock_drift);
      op.p = q;
      op.drift = 0.0;
      plan.ops.push_back(op);
    }
  }

  // Proposal workload: updates flowing through the fault window, covering
  // the full order × atomicity matrix.
  if (cfg.workload_rate_hz > 0) {
    const auto gap =
        static_cast<sim::Duration>(1e6 / cfg.workload_rate_hz);
    std::uint64_t tag = 1;
    sim::SimTime w = cfg.fault_start;
    for (;;) {
      w += rng.uniform_int(std::max<sim::Duration>(1, gap / 2),
                           gap + gap / 2);
      if (w >= cfg.fault_end) break;
      WorkloadOp wop;
      wop.at = w;
      wop.proposer = static_cast<ProcessId>(rng.uniform_int(0, cfg.n - 1));
      wop.tag = tag++;
      wop.order = static_cast<bcast::Order>(rng.uniform_int(0, 2));
      wop.atomicity = static_cast<bcast::Atomicity>(rng.uniform_int(0, 2));
      plan.workload.push_back(wop);
    }
  }
  return plan;
}

gms::HarnessConfig harness_config(const FaultPlan& plan) {
  gms::HarnessConfig cfg;
  cfg.n = plan.cfg.n;
  cfg.seed = plan.seed;
  cfg.delays.loss_prob = plan.cfg.loss_prob;
  cfg.delays.late_prob = plan.cfg.late_prob;
  cfg.node.max_batch = plan.cfg.max_batch;
  cfg.node.occupancy_guard = plan.cfg.occupancy_guard;
  return cfg;
}

void apply_plan(const FaultPlan& plan, gms::SimHarness& harness) {
  auto& faults = harness.faults();
  const auto everyone =
      util::ProcessSet::full(static_cast<ProcessId>(plan.cfg.n));
  for (const FaultOp& op : plan.ops) {
    switch (op.type) {
      case FaultType::crash:
        faults.crash_at(op.at, op.p);
        break;
      case FaultType::recover:
        faults.recover_at(op.at, op.p);
        break;
      case FaultType::stall:
        faults.stall_at(op.at, op.p, op.dur);
        break;
      case FaultType::partition:
        faults.partition_at(op.at, {op.targets, everyone.minus(op.targets)});
        break;
      case FaultType::heal:
        faults.heal_at(op.at);
        break;
      case FaultType::flap:
        faults.flap_at(op.at, {op.targets, everyone.minus(op.targets)},
                       op.count, op.dur);
        break;
      case FaultType::oneway:
        faults.oneway_at(op.at, op.p, op.targets, op.kind != 0);
        break;
      case FaultType::slow_receiver:
        faults.slow_receiver_at(op.at, op.p, static_cast<int>(op.kind),
                                op.dur);
        break;
      case FaultType::drop_rule:
        faults.drop_at(op.at, op.p, op.kind, op.targets, op.count);
        break;
      case FaultType::delay_rule:
        faults.delay_at(op.at, op.p, op.kind, op.targets, op.count, op.dur);
        break;
      case FaultType::duplicate_rule:
        faults.duplicate_at(op.at, op.p, op.kind, op.targets, op.count);
        break;
      case FaultType::corrupt_rule:
        faults.corrupt_at(op.at, op.p, op.kind, op.targets, op.count);
        break;
      case FaultType::clock_step:
        faults.clock_step_at(op.at, op.p, op.step);
        break;
      case FaultType::clock_drift:
        faults.clock_drift_at(op.at, op.p, op.drift);
        break;
      case FaultType::set_model:
        faults.fault_model_at(op.at, op.model);
        break;
      case FaultType::clear_rules:
        faults.clear_rules_at(op.at);
        break;
      case FaultType::store_torn:
      case FaultType::store_flip:
      case FaultType::store_fsync:
        if (!harness.durable()) break;  // storeless run: nothing to attack
        harness.cluster().simulator().at(op.at, [&harness, op] {
          store::MemStorage& m = harness.mem_storage(op.p);
          switch (op.type) {
            case FaultType::store_torn:
              m.faults().torn_appends += op.count;
              m.faults().torn_keep_pct = op.kind;
              break;
            case FaultType::store_flip:
              m.flip_bit("p" + std::to_string(op.p) +
                             (op.kind == 0 ? ".log" : ".snap"),
                         static_cast<std::uint64_t>(op.step));
              break;
            default:
              m.faults().fsync_failures += op.count;
              break;
          }
        });
        break;
    }
  }
  for (const WorkloadOp& wop : plan.workload) {
    harness.cluster().simulator().at(wop.at, [&harness, wop] {
      if (harness.cluster().processes().is_up(wop.proposer))
        harness.propose(wop.proposer, wop.tag, wop.order, wop.atomicity);
    });
  }
}

std::string plan_to_string(const FaultPlan& plan) {
  std::ostringstream os;
  os << std::setprecision(17);
  const TortureConfig& c = plan.cfg;
  os << "torture-plan v1\n";
  os << "n " << c.n << "\nseed " << plan.seed << "\nloss " << c.loss_prob
     << "\nlate " << c.late_prob << "\ndup " << c.model.dup_prob
     << "\nreorder " << c.model.reorder_prob << "\ncorrupt "
     << c.model.corrupt_prob << "\nfault_start " << c.fault_start
     << "\nfault_end " << c.fault_end << "\nsettle " << c.settle
     << "\nquiet " << c.quiet_tail << "\nrate " << c.workload_rate_hz
     << "\nbatch " << c.max_batch << "\n";
  // Optional keys, written only off-default so pre-existing dumps (and
  // their digests) are byte-identical: a disabled occupancy guard marks a
  // deliberately mutated run, round marks label explore windows.
  if (!c.occupancy_guard) os << "guard 0\n";
  for (const RoundMark& r : plan.rounds)
    os << "round " << r.index << ' ' << r.at << '\n';
  for (const FaultOp& op : plan.ops) {
    os << "op " << fault_type_name(op.type) << ' ' << op.at << ' '
       << static_cast<std::int64_t>(op.p) << ' '
       << static_cast<int>(op.kind) << ' ' << op.targets.bits() << ' '
       << op.count << ' ' << op.dur << ' ' << op.step << ' ' << op.drift
       << ' ' << op.model.dup_prob << ' ' << op.model.reorder_prob << ' '
       << op.model.corrupt_prob << ' ' << (op.structural ? 1 : 0) << '\n';
  }
  for (const WorkloadOp& wop : plan.workload) {
    os << "w " << wop.at << ' ' << wop.proposer << ' ' << wop.tag << ' '
       << static_cast<int>(wop.order) << ' '
       << static_cast<int>(wop.atomicity) << '\n';
  }
  os << "end\n";
  return os.str();
}

bool plan_from_string(const std::string& text, FaultPlan& out) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "torture-plan v1") return false;
  FaultPlan plan;
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "n") {
      ls >> plan.cfg.n;
    } else if (key == "seed") {
      ls >> plan.seed;
    } else if (key == "loss") {
      ls >> plan.cfg.loss_prob;
    } else if (key == "late") {
      ls >> plan.cfg.late_prob;
    } else if (key == "dup") {
      ls >> plan.cfg.model.dup_prob;
    } else if (key == "reorder") {
      ls >> plan.cfg.model.reorder_prob;
    } else if (key == "corrupt") {
      ls >> plan.cfg.model.corrupt_prob;
    } else if (key == "fault_start") {
      ls >> plan.cfg.fault_start;
    } else if (key == "fault_end") {
      ls >> plan.cfg.fault_end;
    } else if (key == "settle") {
      ls >> plan.cfg.settle;
    } else if (key == "quiet") {
      ls >> plan.cfg.quiet_tail;
    } else if (key == "rate") {
      ls >> plan.cfg.workload_rate_hz;
    } else if (key == "batch") {
      // Optional: dumps from before proposal batching default to 1.
      ls >> plan.cfg.max_batch;
    } else if (key == "guard") {
      // Optional: omitted (old dumps included) means the guard is on.
      int guard = 1;
      ls >> guard;
      plan.cfg.occupancy_guard = guard != 0;
    } else if (key == "round") {
      // Optional round-boundary marks from explore-generated plans.
      RoundMark mark;
      ls >> mark.index >> mark.at;
      if (ls.fail()) return false;
      plan.rounds.push_back(mark);
    } else if (key == "op") {
      std::string type_name;
      std::int64_t p = 0;
      int kind = 0, count = 0, structural = 0;
      std::uint64_t bits = 0;
      FaultOp op;
      ls >> type_name >> op.at >> p >> kind >> bits >> count >> op.dur >>
          op.step >> op.drift >> op.model.dup_prob >>
          op.model.reorder_prob >> op.model.corrupt_prob >> structural;
      if (ls.fail()) return false;
      bool found = false;
      for (int ti = 0; ti <= static_cast<int>(FaultType::slow_receiver);
           ++ti) {
        if (type_name == fault_type_name(static_cast<FaultType>(ti))) {
          op.type = static_cast<FaultType>(ti);
          found = true;
          break;
        }
      }
      if (!found) return false;
      op.p = static_cast<ProcessId>(p);
      op.kind = static_cast<std::uint8_t>(kind);
      op.targets = util::ProcessSet(bits);
      op.count = count;
      op.structural = structural != 0;
      plan.ops.push_back(op);
    } else if (key == "w") {
      WorkloadOp wop;
      int order = 0, atomicity = 0;
      ls >> wop.at >> wop.proposer >> wop.tag >> order >> atomicity;
      if (ls.fail()) return false;
      wop.order = static_cast<bcast::Order>(order);
      wop.atomicity = static_cast<bcast::Atomicity>(atomicity);
      plan.workload.push_back(wop);
    } else {
      return false;
    }
  }
  if (!saw_end) return false;
  out = std::move(plan);
  return true;
}

}  // namespace tw::torture
