// Exhaustive small-scope model checking of a communication-closed-rounds
// window (torture_main --explore).
//
// Instead of sampling random fault schedules (engine.hpp), explore mode
// ENUMERATES them: a bounded window of `rounds` ring rounds is cut into
// `buckets` choice points per round, and every assignment of the optional
// transitions — one crash, one partition + heal — to those choice points is
// materialized as a deterministic FaultPlan and run through the §3
// invariant oracle. The ambient network is clean (no loss, no duplication,
// no corruption) and the workload is fixed, so two cases differ ONLY in
// where the transitions land: the enumeration walks the interleavings of
// the window, small-scope-hypothesis style, rather than the noise of a
// seed. A DFS over the per-transition choice domains visits every leaf
// exactly once; each leaf is one oracle run, each violation a minimized,
// replayable plan (with round-boundary marks naming the perturbed round).
//
// The explored window is tiny by design — 3 processes x 2 rounds is ~700
// cases and a few seconds of wall clock — so CI can afford full coverage
// on every change, and a deliberately broken protocol (the occupancy-guard
// mutation, see NodeConfig::occupancy_guard) must be CAUGHT by it, which
// keeps the checker itself honest.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "torture/engine.hpp"
#include "torture/fault_plan.hpp"

namespace tw::torture {

/// The bounded window explore mode enumerates. Serializable as an
/// "explore-window v1" spec file so the CI window is a checked-in artifact.
struct ExploreWindow {
  int n = 3;        ///< team size (small scope: 3 is the smallest majority)
  int rounds = 2;   ///< ring rounds in the window (round = one full cycle)
  int buckets = 3;  ///< choice points per round
  std::uint64_t seed = 1;  ///< harness seed shared by every case

  bool crash = true;      ///< include the optional crash transition
  bool partition = true;  ///< include the optional partition+heal transition
  /// Include the optional decision-omission transition: one decision
  /// datagram from a chosen sender to a chosen member is dropped. This is
  /// the paper's §4 "lost decision message" scenario at bucket granularity
  /// — and the only transition that forks a lineage WITHOUT an epoch
  /// change, which is precisely what the occupancy-guard repairs (a
  /// partition fork is caught by the epoch fence instead).
  bool drops = false;
  bool occupancy_guard = true;  ///< NodeConfig::occupancy_guard (mutation)

  sim::SimTime window_start = sim::sec(3);  ///< let the first group form
  sim::Duration settle = sim::sec(15);      ///< convergence budget
  sim::Duration quiet_tail = sim::sec(2);   ///< drain before the checks

  /// One round = one full decider rotation of the default-config ring.
  [[nodiscard]] sim::Duration round_len() const;
  /// Total leaves of the choice tree (cases a full run executes).
  [[nodiscard]] int case_count() const;
};

struct ExploreResult {
  int cases = 0;       ///< leaves enumerated (== window.case_count())
  int violations = 0;  ///< leaves whose oracle run failed
  /// The first few failing runs, full detail (plan + report + trace);
  /// later failures are only counted so a badly broken protocol cannot
  /// balloon memory with hundreds of megabyte-sized traces.
  std::vector<RunResult> failed;
};

/// Materialize one leaf of the choice tree as a replayable plan.
/// Each choice is -1 for "transition absent", else an index into that
/// transition's domain (crash: victim x position; partition: isolated
/// member x position x heal length; drop: sender x deaf member x
/// position). Exposed for tests: a violation's plan must round-trip
/// through plan_to_string/plan_from_string and replay to the same verdict.
[[nodiscard]] FaultPlan build_explore_case(const ExploreWindow& window,
                                           int crash_choice, int part_choice,
                                           int drop_choice);

/// Enumerate every case of the window (DFS over the choice domains) and
/// run each through the invariant oracle. `progress`, if set, is called
/// after every case with (done, total). Keeps at most `keep_failures`
/// failing runs in full detail.
[[nodiscard]] ExploreResult explore(
    const ExploreWindow& window,
    const std::function<void(int, int)>& progress = {},
    int keep_failures = 4);

/// "explore-window v1" spec dump / parse (unknown keys are errors, missing
/// keys keep their defaults — same contract as the plan format).
[[nodiscard]] std::string window_to_string(const ExploreWindow& window);
bool window_from_string(const std::string& text, ExploreWindow& out);

}  // namespace tw::torture
