// The consolidated membership invariant oracle.
//
// After a torture run the oracle replays the harness's TraceLog and
// application lineages through every safety property we claim (paper §3
// properties (1)-(5) as implemented by SimHarness, at-most-one-decider,
// majority group-history agreement) plus the fault-specific guarantees the
// new fault primitives introduce: corrupted datagrams are never delivered,
// duplication never double-delivers, and the ordinal stream every final
// member holds is prefix-consistent across the group. It also computes a
// stable 64-bit digest of the run so bit-for-bit reproducibility is a
// one-line comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gms/sim_harness.hpp"
#include "torture/fault_plan.hpp"

namespace tw::torture {

struct OracleReport {
  bool converged = false;
  util::ProcessSet final_group;
  std::vector<std::string> violations;
  std::uint64_t trace_digest = 0;

  // Fault-model accounting (from the simulated datagram service).
  std::uint64_t corrupted = 0;
  std::uint64_t dropped_corrupt = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delivered = 0;

  [[nodiscard]] bool passed() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Drive the (already started and fault-scheduled) harness to the end of
/// the plan, wait for re-convergence, then check every invariant.
[[nodiscard]] OracleReport run_oracle(gms::SimHarness& harness,
                                      const FaultPlan& plan);

/// Stable FNV-1a digest over the protocol-visible trace and every node's
/// application lineage. Identical seeds must produce identical digests.
[[nodiscard]] std::uint64_t run_digest(gms::SimHarness& harness);

/// Strict per-member gapless-ordinal check: among `members`, every lineage's
/// ordinals must be consecutive (no gaps). Only sound when the run had no
/// membership changes after formation (membership changes legitimately
/// consume ordinals); the dup/reorder property test qualifies, arbitrary
/// torture runs do not — they use the prefix-agreement check instead.
[[nodiscard]] std::vector<std::string> check_gapless_ordinals(
    const gms::SimHarness& harness, util::ProcessSet members);

}  // namespace tw::torture
