// Attendance-ring membership — an ablation baseline.
//
// Like the timewheel protocol it uses ring surveillance with minimal
// failure-free messages: a token circulates the ring, each member forwards
// it to its successor. Unlike the timewheel protocol it has NEITHER the
// single-failure fast path NOR the wrong-suspicion masking: ANY token
// timeout triggers a full coordinator-driven re-formation (every member
// announces itself, the lowest-id process commits a new view once a
// majority has announced). Benchmarks E2/E3 quantify what the paper's two
// optimizations buy relative to this design.
#pragma once

#include <functional>
#include <vector>

#include "net/msg_kind.hpp"
#include "net/transport.hpp"
#include "util/bytes.hpp"

namespace tw::baseline {

struct AttendanceConfig {
  /// A member must forward the token within this after receiving it.
  sim::Duration hold_time = sim::msec(25);
  /// Token considered lost if silent for this long.
  sim::Duration token_timeout = sim::msec(150);
  /// Announcement period during re-formation.
  sim::Duration announce_period = sim::msec(30);
  /// Announcements stay fresh for this long.
  sim::Duration announce_window = sim::msec(120);
};

class AttendanceRing final : public net::Handler {
 public:
  using ViewCallback = std::function<void(std::uint64_t view_id,
                                          util::ProcessSet members)>;

  AttendanceRing(net::Endpoint& endpoint, AttendanceConfig cfg,
                 ViewCallback on_view = {});

  void on_start() override;
  void on_datagram(ProcessId from, std::span<const std::byte> data) override;

  [[nodiscard]] bool in_group() const {
    return view_id_ > 0 && members_.contains(ep_.self());
  }
  [[nodiscard]] std::uint64_t view_id() const { return view_id_; }
  [[nodiscard]] util::ProcessSet members() const { return members_; }
  [[nodiscard]] std::uint64_t reformations() const { return reformations_; }

 private:
  void enter_reformation();
  void announce();
  void watchdog();
  void forward_token_later(std::uint64_t token_seq);
  void install(std::uint64_t view_id, util::ProcessSet members);

  net::Endpoint& ep_;
  AttendanceConfig cfg_;
  ViewCallback on_view_;
  int n_;

  std::uint64_t view_id_ = 0;
  util::ProcessSet members_;
  bool reforming_ = true;
  std::uint64_t reformations_ = 0;
  std::uint64_t last_token_seq_ = 0;
  sim::ClockTime last_token_time_ = -1;
  std::vector<sim::ClockTime> announced_;
  net::TimerId timer_ = net::kNoTimer;       ///< watchdog / announce
  net::TimerId hold_timer_ = net::kNoTimer;  ///< token forwarding
};

}  // namespace tw::baseline
