#include "baseline/heartbeat.hpp"

namespace tw::baseline {

HeartbeatMembership::HeartbeatMembership(net::Endpoint& endpoint,
                                         HeartbeatConfig cfg,
                                         ViewCallback on_view)
    : ep_(endpoint),
      cfg_(cfg),
      on_view_(std::move(on_view)),
      n_(endpoint.team_size()) {
  last_heard_.resize(static_cast<std::size_t>(n_), -1);
}

void HeartbeatMembership::on_start() {
  view_id_ = 0;
  members_.clear();
  proposal_ = ViewProposal{};
  for (auto& t : last_heard_) t = -1;
  if (tick_timer_ != net::kNoTimer) ep_.cancel_timer(tick_timer_);
  tick();
}

ProcessId HeartbeatMembership::coordinator() const {
  const sim::ClockTime now = ep_.hw_now();
  util::ProcessSet candidates = alive(now);
  if (view_id_ > 0) candidates = candidates.intersect(members_);
  candidates.insert(ep_.self());
  return candidates.min();
}

util::ProcessSet HeartbeatMembership::alive(sim::ClockTime now) const {
  util::ProcessSet set;
  set.insert(ep_.self());
  const sim::Duration window = cfg_.period * cfg_.timeout_periods;
  for (ProcessId q = 0; q < static_cast<ProcessId>(n_); ++q)
    if (q != ep_.self() && last_heard_[q] >= 0 &&
        now - last_heard_[q] <= window)
      set.insert(q);
  return set;
}

void HeartbeatMembership::send_heartbeat() {
  util::ByteWriter w;
  w.u8(net::kind_byte(net::MsgKind::heartbeat));
  w.var_u64(view_id_);
  w.var_i64(ep_.hw_now());
  ep_.broadcast(std::move(w).take());
}

void HeartbeatMembership::tick() {
  tick_timer_ = ep_.set_timer_after(cfg_.period, [this] { tick(); });
  send_heartbeat();
  maybe_change_view(ep_.hw_now());
}

void HeartbeatMembership::maybe_change_view(sim::ClockTime now) {
  // Abort a stuck proposal.
  if (proposal_.active && now - proposal_.proposed_at > cfg_.proposal_timeout)
    proposal_ = ViewProposal{};
  if (coordinator() != ep_.self() || proposal_.active) return;

  const util::ProcessSet target = alive(now);
  if (view_id_ > 0 && target == members_) return;  // nothing to change
  if (!target.is_majority_of(n_)) return;          // cannot form a view

  proposal_.view_id = view_id_ + 1;
  proposal_.members = target;
  proposal_.acks = util::ProcessSet({ep_.self()});
  proposal_.proposed_at = now;
  proposal_.active = true;

  util::ByteWriter w;
  w.u8(net::kind_byte(net::MsgKind::view_proposal));
  w.var_u64(proposal_.view_id);
  w.u64(proposal_.members.bits());
  w.var_i64(now);
  ep_.broadcast(std::move(w).take());
}

void HeartbeatMembership::install(std::uint64_t view_id,
                                  util::ProcessSet members) {
  if (view_id <= view_id_) return;
  view_id_ = view_id;
  members_ = members;
  proposal_ = ViewProposal{};
  ep_.trace(sim::TraceKind::view_installed, view_id, 0, members);
  if (on_view_) on_view_(view_id, members);
}

void HeartbeatMembership::handle_heartbeat(ProcessId from,
                                           util::ByteReader& r) {
  (void)r.var_u64();  // peer view id
  (void)r.var_i64();  // peer clock
  last_heard_[from] = ep_.hw_now();
}

void HeartbeatMembership::handle_proposal(ProcessId from,
                                          util::ByteReader& r) {
  last_heard_[from] = ep_.hw_now();
  const std::uint64_t view_id = r.var_u64();
  const util::ProcessSet members(r.u64());
  (void)r.var_i64();
  if (view_id <= view_id_) return;
  if (!members.contains(ep_.self())) return;  // not our view
  util::ByteWriter w;
  w.u8(net::kind_byte(net::MsgKind::view_ack));
  w.var_u64(view_id);
  ep_.send(from, std::move(w).take());
}

void HeartbeatMembership::handle_ack(ProcessId from, util::ByteReader& r) {
  last_heard_[from] = ep_.hw_now();
  const std::uint64_t view_id = r.var_u64();
  if (!proposal_.active || view_id != proposal_.view_id) return;
  proposal_.acks.insert(from);
  if (!proposal_.acks.is_majority_of(n_)) return;
  // Commit.
  util::ByteWriter w;
  w.u8(net::kind_byte(net::MsgKind::view_commit));
  w.var_u64(proposal_.view_id);
  w.u64(proposal_.members.bits());
  ep_.broadcast(std::move(w).take());
  install(proposal_.view_id, proposal_.members);
}

void HeartbeatMembership::handle_commit(ProcessId from,
                                        util::ByteReader& r) {
  last_heard_[from] = ep_.hw_now();
  const std::uint64_t view_id = r.var_u64();
  const util::ProcessSet members(r.u64());
  if (members.contains(ep_.self())) install(view_id, members);
}

void HeartbeatMembership::on_datagram(ProcessId from,
                                      std::span<const std::byte> data) {
  if (data.empty()) return;
  util::ByteReader r(data);
  try {
    switch (static_cast<net::MsgKind>(r.u8())) {
      case net::MsgKind::heartbeat: handle_heartbeat(from, r); break;
      case net::MsgKind::view_proposal: handle_proposal(from, r); break;
      case net::MsgKind::view_ack: handle_ack(from, r); break;
      case net::MsgKind::view_commit: handle_commit(from, r); break;
      default: break;
    }
  } catch (const util::DecodeError&) {
    // Malformed datagram: drop.
  }
}

}  // namespace tw::baseline
