#include "baseline/attendance_ring.hpp"

namespace tw::baseline {

namespace {
// Wire: [kind][tag u8] where tag 0 = announcement, 1 = token, 2 = commit.
constexpr std::uint8_t kAnnounce = 0;
constexpr std::uint8_t kToken = 1;
constexpr std::uint8_t kCommit = 2;
}  // namespace

AttendanceRing::AttendanceRing(net::Endpoint& endpoint, AttendanceConfig cfg,
                               ViewCallback on_view)
    : ep_(endpoint),
      cfg_(cfg),
      on_view_(std::move(on_view)),
      n_(endpoint.team_size()) {
  announced_.resize(static_cast<std::size_t>(n_), -1);
}

void AttendanceRing::on_start() {
  view_id_ = 0;
  members_.clear();
  reforming_ = true;
  reformations_ = 0;
  last_token_seq_ = 0;
  last_token_time_ = -1;
  for (auto& t : announced_) t = -1;
  if (timer_ != net::kNoTimer) ep_.cancel_timer(timer_);
  if (hold_timer_ != net::kNoTimer) ep_.cancel_timer(hold_timer_);
  announce();
  watchdog();
}

void AttendanceRing::install(std::uint64_t view_id,
                             util::ProcessSet members) {
  if (view_id <= view_id_) return;
  view_id_ = view_id;
  members_ = members;
  reforming_ = false;
  last_token_time_ = ep_.hw_now();
  ep_.trace(sim::TraceKind::view_installed, view_id, 0, members);
  if (on_view_) on_view_(view_id, members);
  // The lowest-id member injects the first token.
  if (members_.min() == ep_.self()) forward_token_later(last_token_seq_ + 1);
}

void AttendanceRing::enter_reformation() {
  if (reforming_) return;
  reforming_ = true;
  ++reformations_;
  ep_.trace(sim::TraceKind::suspicion, kNoProcess);
  for (auto& t : announced_) t = -1;
  if (hold_timer_ != net::kNoTimer) {
    ep_.cancel_timer(hold_timer_);
    hold_timer_ = net::kNoTimer;
  }
  announce();
}

void AttendanceRing::announce() {
  util::ByteWriter w;
  w.u8(net::kind_byte(net::MsgKind::attendance_token));
  w.u8(kAnnounce);
  w.var_u64(view_id_);
  w.var_i64(ep_.hw_now());
  ep_.broadcast(std::move(w).take());
}

void AttendanceRing::watchdog() {
  timer_ = ep_.set_timer_after(cfg_.announce_period, [this] { watchdog(); });
  const sim::ClockTime now = ep_.hw_now();
  if (!reforming_) {
    if (last_token_time_ >= 0 &&
        now - last_token_time_ > cfg_.token_timeout) {
      // Token lost: no diagnosis, no masking — full re-formation. This is
      // exactly the cost the timewheel's single-failure fast path avoids.
      enter_reformation();
    }
    return;
  }
  announce();
  // The lowest announced id commits once a majority has announced.
  util::ProcessSet present;
  present.insert(ep_.self());
  for (ProcessId q = 0; q < static_cast<ProcessId>(n_); ++q)
    if (q != ep_.self() && announced_[q] >= 0 &&
        now - announced_[q] <= cfg_.announce_window)
      present.insert(q);
  if (present.is_majority_of(n_) && present.min() == ep_.self()) {
    util::ByteWriter w;
    w.u8(net::kind_byte(net::MsgKind::attendance_token));
    w.u8(kCommit);
    w.var_u64(view_id_ + 1);
    w.u64(present.bits());
    ep_.broadcast(std::move(w).take());
    install(view_id_ + 1, present);
  }
}

void AttendanceRing::forward_token_later(std::uint64_t token_seq) {
  if (hold_timer_ != net::kNoTimer) ep_.cancel_timer(hold_timer_);
  hold_timer_ = ep_.set_timer_after(cfg_.hold_time, [this, token_seq] {
    hold_timer_ = net::kNoTimer;
    if (reforming_ || !in_group()) return;
    util::ByteWriter w;
    w.u8(net::kind_byte(net::MsgKind::attendance_token));
    w.u8(kToken);
    w.var_u64(view_id_);
    w.var_u64(token_seq);
    // The token is logically addressed to the successor; we broadcast it
    // (UDP-broadcast medium) so every member can refresh its token timer.
    ep_.broadcast(std::move(w).take());
    last_token_seq_ = token_seq;
    last_token_time_ = ep_.hw_now();
  });
}

void AttendanceRing::on_datagram(ProcessId from,
                                 std::span<const std::byte> data) {
  if (data.size() < 2) return;
  util::ByteReader r(data);
  try {
    if (static_cast<net::MsgKind>(r.u8()) != net::MsgKind::attendance_token)
      return;
    const std::uint8_t tag = r.u8();
    switch (tag) {
      case kAnnounce: {
        const std::uint64_t peer_view = r.var_u64();
        (void)r.var_i64();
        announced_[from] = ep_.hw_now();
        // A member still announcing with a stale view id missed our commit;
        // resend it so it can catch up.
        if (!reforming_ && in_group() && members_.contains(from) &&
            peer_view < view_id_) {
          util::ByteWriter w;
          w.u8(net::kind_byte(net::MsgKind::attendance_token));
          w.u8(kCommit);
          w.var_u64(view_id_);
          w.u64(members_.bits());
          ep_.send(from, std::move(w).take());
        }
        break;
      }
      case kToken: {
        const std::uint64_t view_id = r.var_u64();
        const std::uint64_t seq = r.var_u64();
        if (view_id != view_id_ || reforming_) break;
        if (seq <= last_token_seq_) break;  // stale token
        last_token_seq_ = seq;
        last_token_time_ = ep_.hw_now();
        if (members_.successor_of(from) == ep_.self())
          forward_token_later(seq + 1);
        break;
      }
      case kCommit: {
        const std::uint64_t view_id = r.var_u64();
        const util::ProcessSet members(r.u64());
        if (members.contains(ep_.self())) install(view_id, members);
        break;
      }
      default:
        break;
    }
  } catch (const util::DecodeError&) {
  }
}

}  // namespace tw::baseline
