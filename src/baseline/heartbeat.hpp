// Heartbeat membership — the conventional comparator (JGroups/Spread
// lineage) for the paper's failure-free-cost and recovery-latency claims.
//
// Every member broadcasts a heartbeat each `period`; a member silent for
// `timeout_periods` periods is suspected. The lowest-id unsuspected member
// acts as coordinator and drives a two-phase view change (PROPOSE → ACK from
// a majority → COMMIT). Contrast with the timewheel protocol:
//  - failure-free cost: Θ(N) heartbeats per period, i.e. Θ(N²) datagrams —
//    the timewheel membership layer sends zero;
//  - a false suspicion triggers a full view change (the suspect is dropped
//    and must rejoin) — the timewheel masks it in wrong-suspicion state.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/msg_kind.hpp"
#include "net/transport.hpp"
#include "util/bytes.hpp"

namespace tw::baseline {

struct HeartbeatConfig {
  sim::Duration period = sim::msec(30);
  int timeout_periods = 3;
  /// A proposed view is aborted if not committed within this.
  sim::Duration proposal_timeout = sim::msec(200);
};

class HeartbeatMembership final : public net::Handler {
 public:
  using ViewCallback = std::function<void(std::uint64_t view_id,
                                          util::ProcessSet members)>;

  HeartbeatMembership(net::Endpoint& endpoint, HeartbeatConfig cfg,
                      ViewCallback on_view = {});

  void on_start() override;
  void on_datagram(ProcessId from, std::span<const std::byte> data) override;

  [[nodiscard]] bool in_group() const {
    return view_id_ > 0 && members_.contains(ep_.self());
  }
  [[nodiscard]] std::uint64_t view_id() const { return view_id_; }
  [[nodiscard]] util::ProcessSet members() const { return members_; }
  [[nodiscard]] ProcessId coordinator() const;

 private:
  struct ViewProposal {
    std::uint64_t view_id = 0;
    util::ProcessSet members;
    util::ProcessSet acks;
    sim::ClockTime proposed_at = 0;
    bool active = false;
  };

  void tick();
  void send_heartbeat();
  [[nodiscard]] util::ProcessSet alive(sim::ClockTime now) const;
  void maybe_change_view(sim::ClockTime now);
  void install(std::uint64_t view_id, util::ProcessSet members);

  void handle_heartbeat(ProcessId from, util::ByteReader& r);
  void handle_proposal(ProcessId from, util::ByteReader& r);
  void handle_ack(ProcessId from, util::ByteReader& r);
  void handle_commit(ProcessId from, util::ByteReader& r);

  net::Endpoint& ep_;
  HeartbeatConfig cfg_;
  ViewCallback on_view_;
  int n_;

  std::uint64_t view_id_ = 0;
  util::ProcessSet members_;
  std::vector<sim::ClockTime> last_heard_;
  ViewProposal proposal_;
  net::TimerId tick_timer_ = net::kNoTimer;
};

}  // namespace tw::baseline
