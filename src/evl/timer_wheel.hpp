// The timer store the repo is named after: a hashed hierarchical timer
// wheel (4 levels × 256 slots at a 2^10 µs ≈ 1 ms base tick), giving O(1)
// arm / cancel / re-arm at millions of concurrent timers.
//
// The protocol workload is arm/cancel churn: every proposer retransmit,
// FIFO gap-grace, rejoin backoff and failure-detection deadline is a timer
// that is usually cancelled before it fires. A binary heap pays O(log n)
// per arm plus a tombstone per cancel (see sim::EventQueue); the wheel pays
// a freelist pop and a doubly-linked-list splice for either operation.
//
// Layout. Deadlines are quantized to ticks of 2^kTickShift µs (rounded UP,
// so a timer never fires before its deadline). Level L holds timers due in
// [256^L, 256^(L+1)) ticks; a timer's slot within a level is addressed by
// bits [8L, 8L+8) of its absolute expiry tick, exactly like the classic
// hashed wheel, so a slot needs no sorting. Level 0 spans ~262 ms, level 1
// ~67 s, level 2 ~4.8 h, level 3 ~51 days; anything farther parks in the
// farthest level-3 slot and re-cascades until it fits.
//
// Cascading is lazy: nothing moves until advance time. When the level-0
// hand wraps, the next level-1 slot is cascaded down (and transitively up
// the hierarchy when those hands wrap), re-hashing each timer into its
// lower-level home. Each timer cascades at most kLevels-1 times in its
// whole life, so the amortized cost per timer stays O(1).
//
// Advancing does not step tick-by-tick: per-level occupancy bitmaps
// (4 × 256 bits) let the wheel jump straight to the next tick where
// anything happens — a populated level-0 slot or a cascade boundary of a
// populated higher slot — so a loop that slept for seconds (or a timer 50
// days out) costs O(events), not O(elapsed ticks).
//
// Handles are generation-tagged: an EventId packs (generation << 32 |
// pool index + 1), and cancel/reschedule verify the generation, so a
// handle kept across the timer's death can never cancel an unrelated
// timer that recycled the same pool slot.
//
// The discrete-event simulator keeps sim::EventQueue: it needs exact
// timestamp ordering for determinism, and its timer counts are tiny. The
// wheel trades ≤1 tick of quantized lateness for throughput — the right
// trade for the real EventLoop, not for the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/event_queue.hpp"  // sim::EventId, sim::kNoEvent
#include "sim/time.hpp"

namespace tw::evl {

class TimerWheel {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::uint64_t kSlots = 1u << kSlotBits;  // 256
  static constexpr int kTickShift = 10;  // 1 tick = 1024 µs ≈ 1 ms
  static constexpr std::int64_t kTickUs = std::int64_t{1} << kTickShift;
  /// Horizon in ticks: deltas beyond this park in the last level-3 slot.
  static constexpr std::uint64_t kMaxDelta =
      (std::uint64_t{1} << (kSlotBits * kLevels)) - 1;

  /// `origin_us` anchors tick 0; pass the clock reading at construction
  /// (deadlines earlier than the origin are treated as due immediately).
  explicit TimerWheel(std::int64_t origin_us = 0);

  /// Arm `fn` for `deadline_us`. O(1). The returned handle is valid until
  /// the timer fires or is cancelled; it is never sim::kNoEvent.
  sim::EventId schedule(std::int64_t deadline_us, std::function<void()> fn);

  /// Disarm. O(1). Returns false when the handle is stale: the timer
  /// already fired, was already cancelled, or the pool slot was recycled
  /// (the generation tag catches that case).
  bool cancel(sim::EventId id);

  /// Move a pending timer to a new deadline, keeping its handle. O(1).
  /// Returns false on a stale handle.
  bool reschedule(sim::EventId id, std::int64_t deadline_us);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Earliest instant at which pop_due() can next yield a timer: the exact
  /// fire time when it is already expired or parked in level 0, otherwise
  /// the cascade boundary that moves it closer (a lower bound on its fire
  /// time — re-poll after cascading). sim::kNever when empty.
  [[nodiscard]] std::int64_t next_time() const;

  struct Fired {
    sim::EventId id = sim::kNoEvent;
    std::int64_t deadline = 0;  ///< effective deadline (≥ arm-time clamp)
    std::function<void()> fn;
  };

  /// Pop one timer whose quantized deadline is ≤ `now_us`, advancing the
  /// wheel (draining slots, cascading levels) as far as `now_us` requires.
  /// Same-tick timers pop in schedule (FIFO) order. std::nullopt when
  /// nothing is due.
  std::optional<Fired> pop_due(std::int64_t now_us);

  /// Occupancy / traffic counters for obs export. Monotone except size_*.
  struct Stats {
    std::uint64_t scheduled = 0;       ///< schedule() calls
    std::uint64_t cancelled = 0;       ///< successful cancel() calls
    std::uint64_t rescheduled = 0;     ///< successful reschedule() calls
    std::uint64_t fired = 0;           ///< timers returned by pop_due()
    std::uint64_t cascades = 0;        ///< slot-cascade operations
    std::uint64_t cascaded_timers = 0; ///< timers re-hashed by cascades
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Live timers currently parked at `level` (0..kLevels-1).
  [[nodiscard]] std::size_t level_size(int level) const;
  /// Live timers already expired and waiting in the ready queue.
  [[nodiscard]] std::size_t ready_size() const { return ready_count_; }
  /// Pool capacity (== high-water mark of concurrent timers). For tests.
  [[nodiscard]] std::size_t allocated_nodes() const { return pool_.size(); }

 private:
  static constexpr std::uint32_t kNil = UINT32_MAX;
  static constexpr std::int32_t kBucketFree = -1;
  static constexpr std::int32_t kBucketReady = -2;

  struct Node {
    std::int64_t deadline = 0;       ///< effective deadline, µs
    std::uint64_t expiry_tick = 0;   ///< ceil((deadline - origin) / tick)
    std::uint32_t gen = 1;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    /// level * kSlots + slot, kBucketReady, or kBucketFree (on freelist).
    std::int32_t bucket = kBucketFree;
    std::function<void()> fn;
  };

  struct List {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  [[nodiscard]] std::uint64_t tick_of(std::int64_t deadline_us) const;
  [[nodiscard]] Node* decode(sim::EventId id);

  std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);

  void push_back(List& list, std::int32_t bucket, std::uint32_t idx);
  void unlink(std::uint32_t idx);

  /// Hash a node into the level/slot its expiry tick calls for (or the
  /// ready queue when already due). The node must be unlinked.
  void place(std::uint32_t idx);

  /// Move every timer in (level, slot) down the hierarchy.
  void cascade(int level, std::uint64_t slot);

  /// Advance the hand to `target_tick`, draining due slots into the ready
  /// queue and cascading at level boundaries, jumping over dead air.
  void advance_to(std::uint64_t target_tick);

  /// Next tick > current_tick_ at which a slot drains or a populated slot
  /// cascades; UINT64_MAX when every wheel level is empty.
  [[nodiscard]] std::uint64_t next_busy_tick() const;

  void bitmap_set(int level, std::uint64_t slot);
  void bitmap_clear(int level, std::uint64_t slot);

  std::int64_t origin_us_;
  std::uint64_t current_tick_ = 0;

  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;

  List lists_[kLevels * kSlots];
  List ready_;
  std::size_t ready_count_ = 0;
  std::size_t level_count_[kLevels] = {0, 0, 0, 0};
  /// Per-level slot-occupancy bitmap: bit s of word s/64 ⇔ slot s nonempty.
  std::uint64_t bitmap_[kLevels][kSlots / 64] = {};

  std::size_t live_ = 0;
  Stats stats_;
};

}  // namespace tw::evl
