#include "evl/dispatch.hpp"

namespace tw::evl {

ThreadPerEventDemux::ThreadPerEventDemux(std::vector<EventFn> handlers)
    : handlers_(std::move(handlers)), workers_(handlers_.size()) {
  for (EventTypeId t = 0; t < static_cast<EventTypeId>(workers_.size()); ++t)
    workers_[t].thread = std::thread([this, t] { worker_main(t); });
}

ThreadPerEventDemux::~ThreadPerEventDemux() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_)
    if (w.thread.joinable()) w.thread.join();
}

void ThreadPerEventDemux::post(EventTypeId type, std::uint64_t payload) {
  {
    std::lock_guard lock(mu_);
    workers_.at(type).queue.push_back(payload);
    ++pending_;
  }
  cv_.notify_all();
}

void ThreadPerEventDemux::drain() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPerEventDemux::worker_main(EventTypeId type) {
  std::unique_lock lock(mu_);
  auto& queue = workers_[type].queue;
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !queue.empty(); });
    if (shutdown_ && queue.empty()) return;
    const std::uint64_t payload = queue.front();
    queue.pop_front();
    // The lock is held across the handler call on purpose: this reproduces
    // the paper's explicit one-at-a-time scheduling of handler threads.
    handlers_[type](payload);
    --pending_;
    if (pending_ == 0) cv_.notify_all();
  }
}

}  // namespace tw::evl
