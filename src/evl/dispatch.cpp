#include "evl/dispatch.hpp"

namespace tw::evl {

ThreadPerEventDemux::ThreadPerEventDemux(std::vector<EventFn> handlers)
    : handlers_(std::move(handlers)), workers_(handlers_.size()) {
  for (EventTypeId t = 0; t < static_cast<EventTypeId>(workers_.size()); ++t)
    workers_[t].thread = std::thread([this, t] { worker_main(t); });
}

ThreadPerEventDemux::~ThreadPerEventDemux() { shutdown(); }

void ThreadPerEventDemux::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_)
    if (w.thread.joinable()) w.thread.join();
}

bool ThreadPerEventDemux::post(EventTypeId type, std::uint64_t payload) {
  {
    std::lock_guard lock(mu_);
    // Once shutdown_ is set the workers are exiting (or gone): an event
    // enqueued now would never be processed and drain() would block on its
    // pending_ count forever. Refuse it instead.
    if (shutdown_) return false;
    workers_.at(type).queue.push_back(payload);
    ++pending_;
  }
  cv_.notify_all();
  return true;
}

void ThreadPerEventDemux::drain() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPerEventDemux::worker_main(EventTypeId type) {
  std::unique_lock lock(mu_);
  auto& queue = workers_[type].queue;
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !queue.empty(); });
    if (shutdown_ && queue.empty()) return;
    const std::uint64_t payload = queue.front();
    queue.pop_front();
    // The lock is held across the handler call on purpose: this reproduces
    // the paper's explicit one-at-a-time scheduling of handler threads.
    handlers_[type](payload);
    --pending_;
    if (pending_ == 0) cv_.notify_all();
  }
}

}  // namespace tw::evl
