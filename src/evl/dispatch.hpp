// The two concurrency structurings compared in paper §5 / [22], as
// in-memory event dispatchers so experiment E6 can measure their relative
// overhead:
//
//  - EventBasedDemux: one thread, a handler table, direct dispatch — the
//    structure the authors chose for the timewheel implementation.
//  - ThreadPerEventDemux: one worker thread per event *type*, fed through
//    per-type queues, with explicit turn-taking so at most one handler runs
//    at a time (the paper avoided data races among handler threads by
//    scheduling them explicitly in the protocol code).
//
// Both expose post(type, payload) / drain(); E6 pushes identical workloads
// through each and reports events/second.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tw::evl {

using EventTypeId = std::uint32_t;
using EventFn = std::function<void(std::uint64_t payload)>;

class EventBasedDemux {
 public:
  explicit EventBasedDemux(std::vector<EventFn> handlers)
      : handlers_(std::move(handlers)) {}

  void post(EventTypeId type, std::uint64_t payload) {
    queue_.push_back({type, payload});
  }

  /// Dispatch everything queued; returns count.
  std::size_t drain() {
    std::size_t n = 0;
    while (!queue_.empty()) {
      const auto [type, payload] = queue_.front();
      queue_.pop_front();
      handlers_[type](payload);
      ++n;
    }
    return n;
  }

 private:
  std::vector<EventFn> handlers_;
  std::deque<std::pair<EventTypeId, std::uint64_t>> queue_;
};

class ThreadPerEventDemux {
 public:
  /// Spawns one worker thread per handler.
  explicit ThreadPerEventDemux(std::vector<EventFn> handlers);
  ~ThreadPerEventDemux();
  ThreadPerEventDemux(const ThreadPerEventDemux&) = delete;
  ThreadPerEventDemux& operator=(const ThreadPerEventDemux&) = delete;

  /// Enqueue `payload` for `type`'s worker. Returns false (and enqueues
  /// nothing) once shutdown() has run: accepting the event would strand it
  /// in a queue no worker will ever drain, deadlocking drain().
  bool post(EventTypeId type, std::uint64_t payload);

  /// Block until every posted event has been processed.
  void drain();

  /// Drain outstanding work and join the workers. Idempotent; called by
  /// the destructor. After shutdown, post() rejects.
  void shutdown();

 private:
  struct Worker {
    std::deque<std::uint64_t> queue;  // guarded by ThreadPerEventDemux::mu_
    std::thread thread;
  };

  void worker_main(EventTypeId type);

  std::vector<EventFn> handlers_;
  std::vector<Worker> workers_;

  // One global lock + cv implements the paper's "explicit scheduling":
  // at most one handler runs at a time, workers take turns.
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace tw::evl
