#include "evl/event_loop.hpp"

#include <poll.h>
#include <time.h>

#include <algorithm>

namespace tw::evl {

std::int64_t EventLoop::mono_now_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

void EventLoop::watch_fd(int fd, std::function<void()> on_readable) {
  fd_handlers_[fd] = std::move(on_readable);
}

void EventLoop::unwatch_fd(int fd) { fd_handlers_.erase(fd); }

sim::EventId EventLoop::add_timer_at(std::int64_t mono_us,
                                     std::function<void()> fn) {
  return timers_.schedule(mono_us, std::move(fn));
}

sim::EventId EventLoop::add_timer_after(sim::Duration d,
                                        std::function<void()> fn) {
  return add_timer_at(mono_now_us() + d, std::move(fn));
}

void EventLoop::post(std::function<void()> fn) {
  const std::lock_guard lock(posted_mu_);
  posted_.push_back(std::move(fn));
}

int EventLoop::dispatch_posted() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
  return static_cast<int>(batch.size());
}

int EventLoop::dispatch_due_timers() {
  int dispatched = 0;
  const std::int64_t now = mono_now_us();
  while (!timers_.empty() && timers_.next_time() <= now) {
    auto fired = timers_.pop();
    fired.fn();
    ++dispatched;
  }
  return dispatched;
}

int EventLoop::poll_once(sim::Duration max_wait_us) {
  int dispatched_posted = dispatch_posted();
  if (dispatched_posted > 0) max_wait_us = 0;  // don't sleep with work done
  // Bound the wait by the nearest timer.
  std::int64_t wait_us = max_wait_us;
  if (!timers_.empty()) {
    const std::int64_t until = timers_.next_time() - mono_now_us();
    wait_us = std::clamp<std::int64_t>(until, 0, max_wait_us);
  }

  std::vector<pollfd> fds;
  fds.reserve(fd_handlers_.size());
  for (const auto& [fd, handler] : fd_handlers_)
    fds.push_back(pollfd{fd, POLLIN, 0});

  int dispatched = 0;
  const int timeout_ms = static_cast<int>((wait_us + 999) / 1000);
  const int rc =
      fds.empty() ? 0 : ::poll(fds.data(), fds.size(), timeout_ms);
  if (fds.empty() && wait_us > 0) {
    timespec req{wait_us / 1000000, (wait_us % 1000000) * 1000};
    nanosleep(&req, nullptr);
  }
  if (rc > 0) {
    for (const auto& pfd : fds) {
      if (pfd.revents & (POLLIN | POLLERR | POLLHUP)) {
        const auto it = fd_handlers_.find(pfd.fd);
        if (it != fd_handlers_.end()) {
          it->second();
          ++dispatched;
        }
      }
    }
  }
  dispatched += dispatch_due_timers();
  return dispatched + dispatched_posted;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) poll_once(sim::msec(100));
}

void EventLoop::run_for(sim::Duration d) {
  stopped_ = false;
  const std::int64_t deadline = mono_now_us() + d;
  while (!stopped_) {
    const std::int64_t left = deadline - mono_now_us();
    if (left <= 0) break;
    poll_once(std::min<sim::Duration>(left, sim::msec(100)));
  }
}

}  // namespace tw::evl
