#include "evl/event_loop.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>

#if defined(__linux__)
#include <sys/eventfd.h>
#endif

namespace tw::evl {

EventLoop::EventLoop() : timers_(mono_now_us()) {
#if defined(__linux__)
  wake_rd_ = wake_wr_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_rd_ >= 0) return;
#endif
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    for (const int fd : fds) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
    wake_rd_ = fds[0];
    wake_wr_ = fds[1];
  }
}

EventLoop::~EventLoop() {
  set_recorder(nullptr);  // unregister the wheel metrics source
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0 && wake_wr_ != wake_rd_) ::close(wake_wr_);
}

std::int64_t EventLoop::mono_now_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

void EventLoop::watch_fd(int fd, std::function<void()> on_readable) {
  fd_handlers_[fd] = std::move(on_readable);
}

void EventLoop::unwatch_fd(int fd) { fd_handlers_.erase(fd); }

void EventLoop::set_recorder(obs::Recorder* recorder) {
  if (metrics_registry_ != nullptr) {
    metrics_registry_->unregister_source(wheel_source_);
    metrics_registry_ = nullptr;
    wheel_source_ = 0;
  }
  recorder_ = recorder;
  poll_eintr_ = nullptr;
  poll_errors_ = nullptr;
  if (recorder_ == nullptr || recorder_->registry() == nullptr) return;
  obs::Registry& reg = *recorder_->registry();
  poll_eintr_ = &reg.counter("evl.poll_eintr");
  poll_errors_ = &reg.counter("evl.poll_error");
  metrics_registry_ = &reg;
  wheel_source_ = reg.register_source(
      [this](std::map<std::string, std::uint64_t>& out) {
        const TimerWheel::Stats& s = timers_.stats();
        out["evl.wheel.size"] = timers_.size();
        out["evl.wheel.ready"] = timers_.ready_size();
        for (int level = 0; level < TimerWheel::kLevels; ++level)
          out["evl.wheel.level" + std::to_string(level)] =
              timers_.level_size(level);
        out["evl.wheel.scheduled"] = s.scheduled;
        out["evl.wheel.cancelled"] = s.cancelled;
        out["evl.wheel.rescheduled"] = s.rescheduled;
        out["evl.wheel.fired"] = s.fired;
        out["evl.wheel.cascades"] = s.cascades;
        out["evl.wheel.cascaded_timers"] = s.cascaded_timers;
      });
}

sim::EventId EventLoop::add_timer_at(std::int64_t mono_us,
                                     std::function<void()> fn) {
  const sim::EventId id = timers_.schedule(mono_us, std::move(fn));
  if (recorder_ != nullptr)
    recorder_->emit(obs::EvKind::timer_arm, 0, id,
                    static_cast<std::uint64_t>(mono_us));
  return id;
}

sim::EventId EventLoop::add_timer_after(sim::Duration d,
                                        std::function<void()> fn) {
  return add_timer_at(mono_now_us() + d, std::move(fn));
}

void EventLoop::cancel_timer(sim::EventId id) {
  if (timers_.cancel(id) && recorder_ != nullptr)
    recorder_->emit(obs::EvKind::timer_cancel, 0, id);
}

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  // Wake a poll_once() that may be asleep in poll(2). Without this the
  // posted callback would wait out the full poll timeout (up to 100ms in
  // run()). EAGAIN just means the counter/pipe already holds a pending
  // wakeup, which is enough.
  if (wake_wr_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_wr_, &one, sizeof(one));
  }
}

void EventLoop::drain_wakeup() {
  std::uint64_t buf[8];
  while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
  }
}

int EventLoop::dispatch_posted() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
  return static_cast<int>(batch.size());
}

int EventLoop::dispatch_due_timers() {
  // Re-read the clock after every callback: a handler that re-arms itself
  // for an already-due deadline (e.g. retransmit backoff of 0) fires again
  // in this same pass instead of stalling until the next poll timeout.
  // kMaxTimerDispatchPerPoll bounds the pass so an always-due re-arm chain
  // cannot starve fd handling.
  int dispatched = 0;
  while (dispatched < kMaxTimerDispatchPerPoll) {
    const std::int64_t now = mono_now_us();
    auto fired = timers_.pop_due(now);
    if (!fired.has_value()) break;
    if (recorder_ != nullptr)
      recorder_->emit(obs::EvKind::timer_fire, 0, fired->id,
                      static_cast<std::uint64_t>(now - fired->deadline));
    fired->fn();
    ++dispatched;
  }
  return dispatched;
}

int EventLoop::poll_once(sim::Duration max_wait_us) {
  int dispatched_posted = dispatch_posted();
  if (dispatched_posted > 0) max_wait_us = 0;  // don't sleep with work done
  // Bound the wait by the nearest timer (for a wheel-parked timer this is
  // its next cascade boundary — a lower bound; waking there re-bounds).
  std::int64_t wait_us = std::max<std::int64_t>(max_wait_us, 0);
  const std::int64_t next_timer = timers_.next_time();
  if (next_timer != sim::kNever) {
    const std::int64_t until = next_timer - mono_now_us();
    wait_us = std::clamp<std::int64_t>(until, 0, wait_us);
  }
  // Cap the single-poll sleep: keeps the ms conversion below from
  // overflowing for far-future waits, and bounds how stale the timer
  // re-bound can get. Waking early is a spurious (harmless) wakeup.
  wait_us = std::min<std::int64_t>(
      wait_us, std::int64_t{kMaxPollTimeoutMs} * 1000);

  std::vector<pollfd> fds;
  fds.reserve(fd_handlers_.size() + 1);
  if (wake_rd_ >= 0) fds.push_back(pollfd{wake_rd_, POLLIN, 0});
  for (const auto& [fd, handler] : fd_handlers_)
    fds.push_back(pollfd{fd, POLLIN, 0});

  int dispatched = 0;
  const std::int64_t wait_deadline = mono_now_us() + wait_us;
  std::int64_t remaining_us = wait_us;
  int rc;
  for (;;) {
    const int timeout_ms = static_cast<int>((remaining_us + 999) / 1000);
    rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc >= 0) break;
    if (errno == EINTR) {
      // A signal (profiler, SIGCHLD, ...) interrupted the wait. Retry for
      // the remaining budget instead of silently treating it as a timeout
      // (which made every pending fd/timer wait out a whole extra pass).
      if (poll_eintr_ != nullptr) poll_eintr_->inc();
      remaining_us = std::max<std::int64_t>(wait_deadline - mono_now_us(), 0);
      continue;
    }
    // A hard poll failure (EINVAL/ENOMEM/EBADF...). Count it and fall
    // through to timer dispatch so the loop keeps making progress.
    if (poll_errors_ != nullptr) poll_errors_->inc();
    break;
  }
  if (rc > 0) {
    for (const auto& pfd : fds) {
      if ((pfd.revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      if (pfd.fd == wake_rd_) {
        drain_wakeup();
        if (recorder_ != nullptr) {
          std::size_t queued = 0;
          {
            const std::lock_guard lock(posted_mu_);
            queued = posted_.size();
          }
          recorder_->emit(obs::EvKind::post_wake, 0, queued);
        }
        continue;
      }
      const auto it = fd_handlers_.find(pfd.fd);
      if (it != fd_handlers_.end()) {
        it->second();
        ++dispatched;
      }
    }
  }
  dispatched += dispatch_due_timers();
  // A wakeup may have landed while poll was sleeping; run what it posted
  // now rather than a full poll cycle later.
  dispatched_posted += dispatch_posted();
  return dispatched + dispatched_posted;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) poll_once(sim::msec(100));
}

void EventLoop::run_for(sim::Duration d) {
  stopped_ = false;
  const std::int64_t deadline = mono_now_us() + d;
  while (!stopped_) {
    const std::int64_t left = deadline - mono_now_us();
    if (left <= 0) break;
    poll_once(std::min<sim::Duration>(left, sim::msec(100)));
  }
}

}  // namespace tw::evl
