// The event-based concurrency framework of paper §5.
//
// "We first implemented an event handler that allows a client to wait for
//  multiple concurrent events: the client can define for each event a
//  procedure that processes that event. [...] At any time, at most one event
//  is processed and therefore no explicit synchronization between procedures
//  [...] is required. The event handler is implemented by a single thread of
//  control."
//
// This EventLoop demultiplexes readable file descriptors (via poll(2)) and
// timer expirations into user callbacks, all on the calling thread. It backs
// the real UDP transport and the thread-vs-event benchmark (experiment E6).
//
// Timers are stored in a hierarchical TimerWheel (evl/timer_wheel.hpp):
// O(1) arm/cancel/re-arm under the protocol's arm-mostly-cancel churn, at
// the price of quantizing deadlines up to the wheel's ~1 ms tick. The
// discrete-event simulator keeps the exact-timestamp sim::EventQueue.
//
// Cross-thread post() is wired to a wakeup descriptor (eventfd, with a
// self-pipe fallback) that is part of the poll set, so a posted callback
// interrupts a sleeping poll_once() immediately instead of waiting out the
// poll timeout.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "evl/timer_wheel.hpp"
#include "obs/recorder.hpp"
#include "sim/time.hpp"

namespace tw::evl {

class EventLoop {
 public:
  /// Upper bound on timer callbacks dispatched per poll_once() pass. The
  /// due-timer loop re-reads the clock after every callback so an immediate
  /// re-arm fires in the same pass; this bound keeps a pathological
  /// always-due re-arm chain from starving fd dispatch.
  static constexpr int kMaxTimerDispatchPerPoll = 256;

  /// poll(2) timeout ceiling. Bounds the int conversion for far-future
  /// timers (a µs wait near INT64_MAX used to overflow the ms cast into a
  /// negative timeout, i.e. poll-forever); waking once a minute to re-bound
  /// the wait costs nothing.
  static constexpr int kMaxPollTimeoutMs = 60 * 1000;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Monotonic wall time in µs (CLOCK_MONOTONIC).
  [[nodiscard]] static std::int64_t mono_now_us();

  /// Invoke `on_readable` whenever fd becomes readable.
  void watch_fd(int fd, std::function<void()> on_readable);
  void unwatch_fd(int fd);

  sim::EventId add_timer_at(std::int64_t mono_us, std::function<void()> fn);
  sim::EventId add_timer_after(sim::Duration d, std::function<void()> fn);
  void cancel_timer(sim::EventId id);

  /// Thread-safe: enqueue `fn` to run on the loop thread during its next
  /// poll_once iteration, and wake the loop if it is sleeping in poll. The
  /// only EventLoop entry point that may be called from a foreign thread.
  void post(std::function<void()> fn);

  /// Run one demultiplexing step: wait (bounded by `max_wait_us`) for the
  /// next fd/timer/post event and dispatch everything due. Returns number
  /// of callbacks dispatched.
  int poll_once(sim::Duration max_wait_us);

  /// Run until stop() is called from inside a callback.
  void run();

  /// Run for approximately `d` of wall time.
  void run_for(sim::Duration d);

  void stop() { stopped_ = true; }

  /// Attach a per-process trace recorder: timer arm/fire/cancel and post
  /// wakeups are traced, and when the recorder carries a metrics registry
  /// the loop registers poll-error counters plus a pull source exporting
  /// the timer wheel's occupancy and cascade counters ("evl.wheel.*").
  /// Pass nullptr to detach. Loop-thread only.
  void set_recorder(obs::Recorder* recorder);

  /// The loop's timer store, exposed read-only for tests and benches.
  [[nodiscard]] const TimerWheel& timer_wheel() const { return timers_; }

 private:
  int dispatch_due_timers();
  int dispatch_posted();
  /// Drain the wakeup descriptor after poll reported it readable.
  void drain_wakeup();

  TimerWheel timers_;  // keyed on monotonic µs
  std::unordered_map<int, std::function<void()>> fd_handlers_;
  bool stopped_ = false;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;

  // Wakeup channel: eventfd on Linux (wake_rd_ == wake_wr_), else a pipe.
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  obs::Recorder* recorder_ = nullptr;
  obs::Registry* metrics_registry_ = nullptr;  ///< owner of wheel_source_
  obs::Registry::SourceId wheel_source_ = 0;
  obs::Counter* poll_eintr_ = nullptr;  ///< EINTR retries (benign)
  obs::Counter* poll_errors_ = nullptr; ///< hard poll(2) failures
};

}  // namespace tw::evl
