#include "evl/timer_wheel.hpp"

#include <bit>

#include "util/assert.hpp"

namespace tw::evl {

namespace {

constexpr std::uint64_t kSlotMask = TimerWheel::kSlots - 1;

/// Bits of the absolute expiry tick that address a slot at `level`.
constexpr std::uint64_t slot_of(std::uint64_t tick, int level) {
  return (tick >> (TimerWheel::kSlotBits * level)) & kSlotMask;
}

/// Delta upper bound (exclusive) a timer may have and still live at `level`.
constexpr std::uint64_t level_span(int level) {
  return std::uint64_t{1} << (TimerWheel::kSlotBits * (level + 1));
}

}  // namespace

TimerWheel::TimerWheel(std::int64_t origin_us) : origin_us_(origin_us) {}

std::uint64_t TimerWheel::tick_of(std::int64_t deadline_us) const {
  if (deadline_us <= origin_us_) return 0;
  const std::uint64_t rel =
      static_cast<std::uint64_t>(deadline_us - origin_us_);
  // Round UP: a timer must never fire before its deadline.
  return (rel >> kTickShift) +
         ((rel & static_cast<std::uint64_t>(kTickUs - 1)) != 0 ? 1 : 0);
}

std::uint32_t TimerWheel::alloc_node() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = pool_[idx].next;
    return idx;
  }
  TW_ASSERT_MSG(pool_.size() < kNil - 1, "timer wheel node pool exhausted");
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void TimerWheel::free_node(std::uint32_t idx) {
  Node& n = pool_[idx];
  n.fn = nullptr;  // release the closure now, not at recycle time
  n.bucket = kBucketFree;
  ++n.gen;  // stale handles to this slot die here
  n.prev = kNil;
  n.next = free_head_;
  free_head_ = idx;
}

void TimerWheel::bitmap_set(int level, std::uint64_t slot) {
  bitmap_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
}

void TimerWheel::bitmap_clear(int level, std::uint64_t slot) {
  bitmap_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
}

void TimerWheel::push_back(List& list, std::int32_t bucket,
                           std::uint32_t idx) {
  Node& n = pool_[idx];
  n.bucket = bucket;
  n.next = kNil;
  n.prev = list.tail;
  if (list.tail != kNil) {
    pool_[list.tail].next = idx;
  } else {
    list.head = idx;
    if (bucket >= 0)
      bitmap_set(bucket / static_cast<std::int32_t>(kSlots),
                 static_cast<std::uint64_t>(bucket) & kSlotMask);
  }
  list.tail = idx;
  if (bucket == kBucketReady) {
    ++ready_count_;
  } else {
    ++level_count_[bucket / static_cast<std::int32_t>(kSlots)];
  }
}

void TimerWheel::unlink(std::uint32_t idx) {
  Node& n = pool_[idx];
  List& list = n.bucket == kBucketReady
                   ? ready_
                   : lists_[static_cast<std::size_t>(n.bucket)];
  if (n.prev != kNil) {
    pool_[n.prev].next = n.next;
  } else {
    list.head = n.next;
  }
  if (n.next != kNil) {
    pool_[n.next].prev = n.prev;
  } else {
    list.tail = n.prev;
  }
  if (n.bucket == kBucketReady) {
    --ready_count_;
  } else {
    const int level = n.bucket / static_cast<std::int32_t>(kSlots);
    --level_count_[level];
    if (list.head == kNil)
      bitmap_clear(level, static_cast<std::uint64_t>(n.bucket) & kSlotMask);
  }
  n.prev = n.next = kNil;
}

void TimerWheel::place(std::uint32_t idx) {
  Node& n = pool_[idx];
  if (n.expiry_tick <= current_tick_) {
    push_back(ready_, kBucketReady, idx);
    return;
  }
  const std::uint64_t delta = n.expiry_tick - current_tick_;
  int level = 0;
  std::uint64_t placement_tick = n.expiry_tick;
  while (level < kLevels - 1 && delta >= level_span(level)) ++level;
  if (delta > kMaxDelta) {
    // Beyond the horizon: park in the farthest level-3 slot; it re-hashes
    // (and eventually fits) each time that slot cascades.
    placement_tick = current_tick_ + kMaxDelta;
  }
  const std::uint64_t slot = slot_of(placement_tick, level);
  const std::int32_t bucket =
      static_cast<std::int32_t>(static_cast<std::uint64_t>(level) * kSlots +
                                slot);
  push_back(lists_[static_cast<std::size_t>(bucket)], bucket, idx);
}

void TimerWheel::cascade(int level, std::uint64_t slot) {
  List& list = lists_[static_cast<std::size_t>(level) * kSlots + slot];
  std::uint32_t idx = list.head;
  if (idx == kNil) return;
  list.head = list.tail = kNil;
  bitmap_clear(level, slot);
  ++stats_.cascades;
  while (idx != kNil) {
    const std::uint32_t next = pool_[idx].next;
    --level_count_[level];
    ++stats_.cascaded_timers;
    place(idx);  // in list order, so same-slot FIFO order survives
    idx = next;
  }
}

std::uint64_t TimerWheel::next_busy_tick() const {
  std::uint64_t best = UINT64_MAX;
  for (int level = 0; level < kLevels; ++level) {
    if (level_count_[level] == 0) continue;
    const int shift = kSlotBits * level;
    const std::uint64_t hand = (current_tick_ >> shift) & kSlotMask;
    for (std::uint64_t w = 0; w < kSlots / 64; ++w) {
      std::uint64_t word = bitmap_[level][w];
      while (word != 0) {
        const std::uint64_t slot =
            w * 64 + static_cast<std::uint64_t>(std::countr_zero(word));
        word &= word - 1;
        // Distance (in this level's units) until the hand reaches `slot`.
        // d == 0 means the hand is exactly on it, which can only happen
        // right after that slot drained/cascaded — a full lap away.
        std::uint64_t d = (slot - hand) & kSlotMask;
        if (d == 0) d = kSlots;
        const std::uint64_t t =
            ((current_tick_ >> shift) + d) << shift;
        best = t < best ? t : best;
      }
    }
  }
  return best;
}

void TimerWheel::advance_to(std::uint64_t target_tick) {
  while (current_tick_ < target_tick) {
    if (live_ == ready_count_) {  // wheel levels empty: jump over dead air
      current_tick_ = target_tick;
      return;
    }
    const std::uint64_t busy = next_busy_tick();
    if (busy > target_tick) {
      current_tick_ = target_tick;
      return;
    }
    current_tick_ = busy;
    // Top-down at each wrapped boundary: place() re-hashes straight to a
    // timer's final level, so levels never re-cascade within one tick.
    for (int level = kLevels - 1; level >= 1; --level) {
      const std::uint64_t mask = level_span(level - 1) - 1;
      if ((current_tick_ & mask) == 0)
        cascade(level, slot_of(current_tick_, level));
    }
    // Drain the level-0 slot the hand landed on into the ready queue.
    const std::uint64_t slot = current_tick_ & kSlotMask;
    List& list = lists_[slot];
    std::uint32_t idx = list.head;
    if (idx != kNil) {
      list.head = list.tail = kNil;
      bitmap_clear(0, slot);
      while (idx != kNil) {
        const std::uint32_t next = pool_[idx].next;
        --level_count_[0];
        push_back(ready_, kBucketReady, idx);
        idx = next;
      }
    }
  }
}

sim::EventId TimerWheel::schedule(std::int64_t deadline_us,
                                  std::function<void()> fn) {
  const std::uint32_t idx = alloc_node();
  Node& n = pool_[idx];
  // Clamp past deadlines to the wheel's notion of now so the recorded
  // deadline (and the fire-latency derived from it) stays meaningful for
  // the "run asap" idiom of arming with a deadline of 0.
  const std::int64_t floor_us =
      origin_us_ + static_cast<std::int64_t>(current_tick_ << kTickShift);
  n.deadline = deadline_us < floor_us ? floor_us : deadline_us;
  n.expiry_tick = tick_of(n.deadline);
  if (n.expiry_tick < current_tick_) n.expiry_tick = current_tick_;
  n.fn = std::move(fn);
  place(idx);
  ++live_;
  ++stats_.scheduled;
  return (static_cast<sim::EventId>(n.gen) << 32) |
         static_cast<sim::EventId>(idx + 1);
}

TimerWheel::Node* TimerWheel::decode(sim::EventId id) {
  const std::uint64_t low = id & 0xffffffffu;
  if (low == 0 || low > pool_.size()) return nullptr;
  Node& n = pool_[static_cast<std::size_t>(low - 1)];
  if (n.bucket == kBucketFree) return nullptr;
  if (n.gen != static_cast<std::uint32_t>(id >> 32)) return nullptr;
  return &n;
}

bool TimerWheel::cancel(sim::EventId id) {
  Node* n = decode(id);
  if (n == nullptr) return false;
  const std::uint32_t idx = static_cast<std::uint32_t>((id & 0xffffffffu) - 1);
  unlink(idx);
  free_node(idx);
  --live_;
  ++stats_.cancelled;
  return true;
}

bool TimerWheel::reschedule(sim::EventId id, std::int64_t deadline_us) {
  Node* n = decode(id);
  if (n == nullptr) return false;
  const std::uint32_t idx = static_cast<std::uint32_t>((id & 0xffffffffu) - 1);
  unlink(idx);
  const std::int64_t floor_us =
      origin_us_ + static_cast<std::int64_t>(current_tick_ << kTickShift);
  n->deadline = deadline_us < floor_us ? floor_us : deadline_us;
  n->expiry_tick = tick_of(n->deadline);
  if (n->expiry_tick < current_tick_) n->expiry_tick = current_tick_;
  place(idx);
  ++stats_.rescheduled;
  return true;
}

std::int64_t TimerWheel::next_time() const {
  if (ready_.head != kNil) return pool_[ready_.head].deadline;
  if (live_ == 0) return sim::kNever;
  const std::uint64_t busy = next_busy_tick();
  if (busy == UINT64_MAX) return sim::kNever;  // unreachable when live_ > 0
  return origin_us_ + static_cast<std::int64_t>(busy << kTickShift);
}

std::optional<TimerWheel::Fired> TimerWheel::pop_due(std::int64_t now_us) {
  if (live_ == 0) {
    // Keep the hand tracking time even while idle so a later schedule's
    // relative placement starts from the present, not the distant past.
    if (now_us > origin_us_) {
      const std::uint64_t target =
          static_cast<std::uint64_t>(now_us - origin_us_) >> kTickShift;
      if (target > current_tick_) current_tick_ = target;
    }
    return std::nullopt;
  }
  if (now_us > origin_us_) {
    const std::uint64_t target =
        static_cast<std::uint64_t>(now_us - origin_us_) >> kTickShift;
    if (target > current_tick_) advance_to(target);
  }
  if (ready_.head == kNil) return std::nullopt;
  const std::uint32_t idx = ready_.head;
  Node& n = pool_[idx];
  Fired fired;
  fired.id = (static_cast<sim::EventId>(n.gen) << 32) |
             static_cast<sim::EventId>(idx + 1);
  fired.deadline = n.deadline;
  fired.fn = std::move(n.fn);
  unlink(idx);
  free_node(idx);
  --live_;
  ++stats_.fired;
  return fired;
}

std::size_t TimerWheel::level_size(int level) const {
  TW_ASSERT(level >= 0 && level < kLevels);
  return level_count_[level];
}

}  // namespace tw::evl
