// The per-process recovery kernel on stable storage.
//
// StableStore persists the handful of facts a process MUST remember across
// a crash for the membership and broadcast guarantees to survive its
// recovery (paper §2/§4.2):
//   * incarnation counter — distinguishes restarts, drives rejoin traffic;
//   * a reserved proposal-sequence watermark — proposal ids strictly below
//     it may have been used, so the next incarnation starts above it and
//     ids never repeat (the continuity rule behind FIFO order);
//   * the last installed GroupId + member set — the floor against which a
//     recovering process validates state-transfer donors (a snapshot from
//     an older group than the one we installed is stale);
//   * delivery watermarks — the highest total-order ordinal delivered to
//     the application and the per-proposer delivered sequence numbers, so
//     a recovered process never hands the application a duplicate.
//
// Representation: a snapshot (atomic write-then-rename, CRC-guarded) plus
// an append-only CRC-framed record log of incremental updates. open()
// loads the last good snapshot and replays whatever log records survive;
// every replayed field merges via max(), so a corrupted or torn record
// degrades the kernel monotonically (a slightly older watermark) instead
// of corrupting it. checkpoint() folds the log back into the snapshot.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "store/record_log.hpp"
#include "store/storage.hpp"
#include "util/types.hpp"

namespace tw::store {

struct RecoveryKernel {
  std::uint64_t incarnation = 0;
  /// Proposal ids strictly below this may have been used by any previous
  /// incarnation; the next incarnation must start at or above it.
  ProposalSeq reserved_seq = 0;
  /// Last installed group (0 = never installed one this lifetime).
  GroupId gid = 0;
  std::uint64_t view_bits = 0;
  /// Total-order ordinals strictly below this were delivered to the app.
  Ordinal delivered_below = 0;
  /// Per-proposer: sequence numbers at or below were delivered.
  std::map<ProcessId, ProposalSeq> delivered_seq;
};

struct StoreOpenStats {
  bool snapshot_loaded = false;
  std::size_t log_records = 0;
  std::size_t skipped_bytes = 0;    ///< log garbage scanned over
  std::size_t truncated_bytes = 0;  ///< torn log tail removed
  std::size_t bad_records = 0;      ///< framed but undecodable payloads
};

class StableStore {
 public:
  /// Uses `<prefix>.log` and `<prefix>.snap` inside the backend.
  StableStore(Storage& backend, std::string prefix);

  /// (Re)load the kernel: last good snapshot, then replay the log over it.
  /// Safe to call again after every recovery — the in-memory kernel is
  /// rebuilt from scratch from what actually survived.
  StoreOpenStats open();

  [[nodiscard]] const RecoveryKernel& kernel() const { return kernel_; }

  /// Bump and persist the incarnation counter. Returns the new value.
  std::uint64_t begin_incarnation();

  /// Ensure `reserved_seq > seq` durably, extending in `chunk`-sized
  /// strides so only every chunk-th proposal pays a log append. Call
  /// BEFORE using `seq`; returns the new durable watermark.
  ProposalSeq reserve_proposal_seq(ProposalSeq seq, ProposalSeq chunk = 64);

  /// Persist the newly installed view.
  void note_view(GroupId gid, std::uint64_t view_bits);

  /// Persist delivery progress: proposer's `seq` delivered, and all
  /// total-order ordinals strictly below `below` delivered.
  void note_delivery(ProcessId proposer, ProposalSeq seq, Ordinal below);

  /// Fold the log into a fresh snapshot and reset the log. Returns false
  /// (log kept) if the snapshot write failed.
  bool checkpoint();

  [[nodiscard]] std::size_t log_records_since_checkpoint() const {
    return log_records_;
  }
  /// Appends/syncs that reported a durability failure since open().
  [[nodiscard]] std::uint64_t sync_failures() const {
    return sync_failures_;
  }

 private:
  void append_record(const std::vector<std::byte>& payload);
  void apply_record(const std::vector<std::byte>& payload, bool& bad);

  Storage& backend_;
  std::string snap_name_;
  RecordLog log_;
  RecoveryKernel kernel_;
  std::size_t log_records_ = 0;
  std::uint64_t sync_failures_ = 0;
};

}  // namespace tw::store
