#include "store/storage.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace tw::store {

// --- MemStorage -------------------------------------------------------------

bool MemStorage::read(const std::string& name, std::vector<std::byte>& out) {
  const auto it = files_.find(name);
  if (it == files_.end()) return false;
  out = it->second.data;
  return true;
}

bool MemStorage::append(const std::string& name,
                        std::span<const std::byte> data) {
  File& f = files_[name];
  std::size_t keep = data.size();
  if (faults_.torn_appends > 0 && !data.empty()) {
    --faults_.torn_appends;
    const int pct = std::clamp(faults_.torn_keep_pct, 0, 99);
    keep = std::max<std::size_t>(
        1, data.size() * static_cast<std::size_t>(pct) / 100);
    keep = std::min(keep, data.size() - 1);
  } else if (faults_.short_appends > 0 && !data.empty()) {
    --faults_.short_appends;
    keep = data.size() - 1;
  }
  f.data.insert(f.data.end(), data.begin(),
                data.begin() + static_cast<std::ptrdiff_t>(keep));
  return true;
}

bool MemStorage::write_atomic(const std::string& name,
                              std::span<const std::byte> data) {
  // The rename is preceded by an fsync of the temp file: an armed fsync
  // failure aborts the replacement and leaves the old content intact.
  if (faults_.fsync_failures > 0) {
    --faults_.fsync_failures;
    return false;
  }
  File& f = files_[name];
  f.data.assign(data.begin(), data.end());
  f.synced = f.data.size();
  return true;
}

bool MemStorage::truncate(const std::string& name, std::uint64_t size) {
  const auto it = files_.find(name);
  if (it == files_.end()) return false;
  File& f = it->second;
  if (size < f.data.size()) f.data.resize(size);
  f.synced = std::min<std::uint64_t>(f.synced, f.data.size());
  return true;
}

bool MemStorage::sync(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) return true;  // nothing to make durable
  if (faults_.fsync_failures > 0) {
    --faults_.fsync_failures;
    return false;
  }
  it->second.synced = it->second.data.size();
  return true;
}

bool MemStorage::remove(const std::string& name) {
  return files_.erase(name) > 0;
}

bool MemStorage::exists(const std::string& name) const {
  return files_.contains(name);
}

bool MemStorage::flip_bit(const std::string& name,
                          std::uint64_t bit_index) {
  const auto it = files_.find(name);
  if (it == files_.end() || it->second.data.empty()) return false;
  std::vector<std::byte>& data = it->second.data;
  const std::uint64_t bit = bit_index % (data.size() * 8);
  data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  return true;
}

void MemStorage::crash() {
  for (auto& [name, f] : files_) {
    if (f.synced < f.data.size()) f.data.resize(f.synced);
  }
}

std::uint64_t MemStorage::size(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.data.size();
}

std::uint64_t MemStorage::synced_size(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.synced;
}

// --- FileStorage ------------------------------------------------------------

FileStorage::FileStorage(std::string dir) : dir_(std::move(dir)) {
  // Create the whole path, parents included (EEXIST at each step is fine).
  for (std::size_t i = 1; i <= dir_.size(); ++i) {
    if (i < dir_.size() && dir_[i] != '/') continue;
    ::mkdir(dir_.substr(0, i).c_str(), 0755);
  }
}

std::string FileStorage::path(const std::string& name) const {
  return dir_ + "/" + name;
}

bool FileStorage::read(const std::string& name,
                       std::vector<std::byte>& out) {
  const int fd = ::open(path(name).c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  std::byte buf[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (got == 0) break;
    out.insert(out.end(), buf, buf + got);
  }
  ::close(fd);
  return true;
}

bool FileStorage::append(const std::string& name,
                         std::span<const std::byte> data) {
  const int fd =
      ::open(path(name).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t put = ::write(fd, data.data() + done, data.size() - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    done += static_cast<std::size_t>(put);
  }
  ::close(fd);
  return true;
}

bool FileStorage::write_atomic(const std::string& name,
                               std::span<const std::byte> data) {
  const std::string tmp = path(name) + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t put = ::write(fd, data.data() + done, data.size() - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    done += static_cast<std::size_t>(put);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path(name).c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool FileStorage::truncate(const std::string& name, std::uint64_t size) {
  return ::truncate(path(name).c_str(),
                    static_cast<off_t>(size)) == 0;
}

bool FileStorage::sync(const std::string& name) {
  const int fd = ::open(path(name).c_str(), O_RDONLY);
  if (fd < 0) return !exists(name);  // nothing to sync is fine
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool FileStorage::remove(const std::string& name) {
  return ::unlink(path(name).c_str()) == 0;
}

bool FileStorage::exists(const std::string& name) const {
  struct stat st{};
  return ::stat(path(name).c_str(), &st) == 0;
}

}  // namespace tw::store
