// CRC-guarded atomic snapshot: the checkpoint half of the stable store.
//
// A snapshot is the whole serialized recovery kernel written through
// Storage::write_atomic (write temp, fsync, rename), so the file named
// `name` always holds either the previous complete snapshot or the new
// complete snapshot — never a mix. The CRC32C header turns any media
// corruption into a clean load failure, at which point the caller falls
// back to replaying the record log alone.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "store/storage.hpp"

namespace tw::store {

/// Write `payload` as the new snapshot. Returns false (old snapshot
/// intact) if the backend's atomic replace failed.
bool save_snapshot(Storage& backend, const std::string& name,
                   std::span<const std::byte> payload);

/// Load and verify. Returns false if the snapshot is absent, torn or
/// fails its CRC — the caller must treat it as nonexistent.
bool load_snapshot(Storage& backend, const std::string& name,
                   std::vector<std::byte>& payload);

}  // namespace tw::store
