// Append-only CRC32C-framed record log.
//
// Frame layout (little-endian):  [u8 magic 0xA7][u32 len][u32 crc32c(payload)]
// [payload]. Each append is one frame followed by a sync barrier, so a
// record is either durably whole or repairable garbage.
//
// open() is corruption-tolerant by construction: it scans the file byte by
// byte, accepting a frame only when the magic, the length bound and the
// CRC all agree. A torn tail (crash mid-append) parses as trailing garbage
// and is physically truncated away; a bit flip or short write mid-log
// parses as an unframed gap that the scanner skips, resynchronizing on the
// next valid frame. A forged frame must present the magic byte AND a
// matching CRC32C over its claimed payload at the same offset — a ~2^-32
// accident the kernel layer additionally guards with monotonic merges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "store/storage.hpp"

namespace tw::store {

struct LogOpenStats {
  std::size_t records = 0;          ///< frames recovered
  std::size_t skipped_bytes = 0;    ///< mid-log garbage scanned over
  std::size_t truncated_bytes = 0;  ///< torn tail physically removed
  [[nodiscard]] bool clean() const {
    return skipped_bytes == 0 && truncated_bytes == 0;
  }
};

class RecordLog {
 public:
  RecordLog(Storage& backend, std::string name)
      : backend_(backend), name_(std::move(name)) {}

  /// Scan + repair. Every recovered payload is appended to `records`.
  LogOpenStats open(std::vector<std::vector<std::byte>>& records);

  /// Frame, append and sync one record. Returns false if the sync barrier
  /// failed (the record may not survive a crash).
  bool append(std::span<const std::byte> payload);

  /// Drop all records (after a successful snapshot checkpoint).
  bool reset();

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Storage& backend_;
  std::string name_;
};

}  // namespace tw::store
