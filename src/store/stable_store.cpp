#include "store/stable_store.hpp"

#include <algorithm>

#include "store/snapshot.hpp"
#include "util/bytes.hpp"

namespace tw::store {

namespace {

// Log-record payload types. All fields merge monotonically on replay, so
// losing any record to corruption only lowers a watermark.
constexpr std::uint8_t kRecIncarnation = 1;
constexpr std::uint8_t kRecReserveSeq = 2;
constexpr std::uint8_t kRecView = 3;
constexpr std::uint8_t kRecDelivery = 4;

std::vector<std::byte> encode_kernel(const RecoveryKernel& k) {
  util::ByteWriter w;
  w.var_u64(k.incarnation);
  w.var_u64(k.reserved_seq);
  w.var_u64(k.gid);
  w.u64(k.view_bits);
  w.var_u64(k.delivered_below);
  w.var_u64(k.delivered_seq.size());
  for (const auto& [proposer, seq] : k.delivered_seq) {
    w.u32(proposer);
    w.var_u64(seq);
  }
  return std::move(w).take();
}

bool decode_kernel(const std::vector<std::byte>& bytes, RecoveryKernel& k) {
  try {
    util::ByteReader r(bytes);
    k.incarnation = r.var_u64();
    k.reserved_seq = r.var_u64();
    k.gid = r.var_u64();
    k.view_bits = r.u64();
    k.delivered_below = r.var_u64();
    const std::uint64_t count = r.var_u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      const ProcessId proposer = r.u32();
      k.delivered_seq[proposer] = r.var_u64();
    }
  } catch (const util::DecodeError&) {
    return false;
  }
  return true;
}

}  // namespace

StableStore::StableStore(Storage& backend, std::string prefix)
    : backend_(backend),
      snap_name_(prefix + ".snap"),
      log_(backend, prefix + ".log") {}

StoreOpenStats StableStore::open() {
  StoreOpenStats stats;
  kernel_ = RecoveryKernel{};
  log_records_ = 0;
  sync_failures_ = 0;

  std::vector<std::byte> snap;
  if (load_snapshot(backend_, snap_name_, snap)) {
    RecoveryKernel k;
    if (decode_kernel(snap, k)) {
      kernel_ = std::move(k);
      stats.snapshot_loaded = true;
    } else {
      ++stats.bad_records;
    }
  }

  std::vector<std::vector<std::byte>> records;
  const LogOpenStats log_stats = log_.open(records);
  stats.log_records = log_stats.records;
  stats.skipped_bytes = log_stats.skipped_bytes;
  stats.truncated_bytes = log_stats.truncated_bytes;
  for (const auto& rec : records) {
    bool bad = false;
    apply_record(rec, bad);
    if (bad) ++stats.bad_records;
  }
  log_records_ = log_stats.records;
  return stats;
}

void StableStore::apply_record(const std::vector<std::byte>& payload,
                               bool& bad) {
  try {
    util::ByteReader r(payload);
    switch (r.u8()) {
      case kRecIncarnation:
        kernel_.incarnation = std::max(kernel_.incarnation, r.var_u64());
        break;
      case kRecReserveSeq:
        kernel_.reserved_seq = std::max(kernel_.reserved_seq, r.var_u64());
        break;
      case kRecView: {
        const GroupId gid = r.var_u64();
        const std::uint64_t bits = r.u64();
        if (gid >= kernel_.gid) {
          kernel_.gid = gid;
          kernel_.view_bits = bits;
        }
        break;
      }
      case kRecDelivery: {
        const ProcessId proposer = r.u32();
        const ProposalSeq seq = r.var_u64();
        const Ordinal below = r.var_u64();
        auto& slot = kernel_.delivered_seq[proposer];
        slot = std::max(slot, seq);
        kernel_.delivered_below = std::max(kernel_.delivered_below, below);
        break;
      }
      default:
        bad = true;
        break;
    }
  } catch (const util::DecodeError&) {
    bad = true;
  }
}

void StableStore::append_record(const std::vector<std::byte>& payload) {
  if (!log_.append(payload)) ++sync_failures_;
  ++log_records_;
}

std::uint64_t StableStore::begin_incarnation() {
  ++kernel_.incarnation;
  util::ByteWriter w;
  w.u8(kRecIncarnation);
  w.var_u64(kernel_.incarnation);
  append_record(std::move(w).take());
  return kernel_.incarnation;
}

ProposalSeq StableStore::reserve_proposal_seq(ProposalSeq seq,
                                              ProposalSeq chunk) {
  if (seq < kernel_.reserved_seq) return kernel_.reserved_seq;
  kernel_.reserved_seq = seq + std::max<ProposalSeq>(1, chunk);
  util::ByteWriter w;
  w.u8(kRecReserveSeq);
  w.var_u64(kernel_.reserved_seq);
  append_record(std::move(w).take());
  return kernel_.reserved_seq;
}

void StableStore::note_view(GroupId gid, std::uint64_t view_bits) {
  if (gid < kernel_.gid) return;
  kernel_.gid = gid;
  kernel_.view_bits = view_bits;
  util::ByteWriter w;
  w.u8(kRecView);
  w.var_u64(gid);
  w.u64(view_bits);
  append_record(std::move(w).take());
}

void StableStore::note_delivery(ProcessId proposer, ProposalSeq seq,
                                Ordinal below) {
  auto& slot = kernel_.delivered_seq[proposer];
  slot = std::max(slot, seq);
  kernel_.delivered_below = std::max(kernel_.delivered_below, below);
  util::ByteWriter w;
  w.u8(kRecDelivery);
  w.u32(proposer);
  w.var_u64(seq);
  w.var_u64(below);
  append_record(std::move(w).take());
}

bool StableStore::checkpoint() {
  if (!save_snapshot(backend_, snap_name_, encode_kernel(kernel_))) {
    ++sync_failures_;
    return false;
  }
  log_.reset();
  log_records_ = 0;
  return true;
}

}  // namespace tw::store
