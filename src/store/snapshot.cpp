#include "store/snapshot.hpp"

#include "util/bytes.hpp"
#include "util/crc32.hpp"

namespace tw::store {

namespace {
constexpr std::uint32_t kSnapMagic = 0x5457534e;  // "TWSN"
}

bool save_snapshot(Storage& backend, const std::string& name,
                   std::span<const std::byte> payload) {
  util::ByteWriter w;
  w.u32(kSnapMagic);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(util::crc32c(payload));
  for (const std::byte b : payload) w.u8(static_cast<std::uint8_t>(b));
  return backend.write_atomic(name, std::move(w).take());
}

bool load_snapshot(Storage& backend, const std::string& name,
                   std::vector<std::byte>& payload) {
  std::vector<std::byte> data;
  if (!backend.read(name, data)) return false;
  if (data.size() < 12) return false;
  util::ByteReader r(data);
  try {
    if (r.u32() != kSnapMagic) return false;
    const std::uint32_t len = r.u32();
    const std::uint32_t crc = r.u32();
    if (len != data.size() - 12) return false;
    const std::span<const std::byte> body(data.data() + 12, len);
    if (util::crc32c(body) != crc) return false;
    payload.assign(body.begin(), body.end());
  } catch (const util::DecodeError&) {
    return false;
  }
  return true;
}

}  // namespace tw::store
