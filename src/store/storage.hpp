// Stable-storage backends for the per-process recovery kernel.
//
// The paper's timed asynchronous model lets processes crash AND recover;
// what makes recovery sound is a small amount of stable storage that
// survives the crash (proposal ids must never repeat across incarnations,
// and a recovered process must not act on pre-crash delivery state it no
// longer remembers). `Storage` is the byte-level substrate: a flat
// namespace of named byte files with the three primitives the layers above
// need — whole-file read, append, and atomic whole-file replace
// (write-then-rename) — plus an explicit sync barrier.
//
// Two backends:
//  * MemStorage — an in-memory filesystem with a WRITE-BACK CACHE model:
//    appended bytes are volatile until sync() succeeds, and crash() drops
//    every unsynced suffix, exactly like a page cache on power loss. It is
//    also the torture engine's attack surface: torn appends (a crashed
//    write persists only a prefix), short writes (the tail bytes of one
//    append are silently lost), direct bit flips (media corruption), and
//    armed fsync failures are all injectable and deterministic.
//  * FileStorage — a directory of real files via POSIX fds, used by the
//    UDP example so a kill -9'd process finds its kernel on restart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace tw::store {

class Storage {
 public:
  virtual ~Storage() = default;

  /// Whole-file read. Returns false if the file does not exist.
  virtual bool read(const std::string& name,
                    std::vector<std::byte>& out) = 0;
  /// Append bytes (creating the file if needed). Durable only after a
  /// successful sync().
  virtual bool append(const std::string& name,
                      std::span<const std::byte> data) = 0;
  /// Atomically replace the file's whole content (write temp, sync,
  /// rename). On failure the previous content is intact.
  virtual bool write_atomic(const std::string& name,
                            std::span<const std::byte> data) = 0;
  /// Drop everything at and past `size` (used for torn-tail repair).
  virtual bool truncate(const std::string& name, std::uint64_t size) = 0;
  /// Durability barrier for preceding appends. May fail (disk trouble);
  /// unsynced bytes are then still volatile.
  virtual bool sync(const std::string& name) = 0;
  virtual bool remove(const std::string& name) = 0;
  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;
};

/// Armed fault counters for MemStorage. Each counter burns down as the
/// matching operations happen, so a torture plan can schedule "the next
/// append is torn" deterministically.
struct StorageFaults {
  /// Next N appends persist only a prefix (a crash mid-write): keep
  /// max(1, len * torn_keep_pct / 100) bytes, always less than the whole.
  int torn_appends = 0;
  int torn_keep_pct = 50;
  /// Next N appends lose their final byte (a classic short write that
  /// went unchecked) while later appends continue after the gap.
  int short_appends = 0;
  /// Next N sync() barriers fail; the bytes they covered stay volatile
  /// and are lost if a crash() lands before a later successful sync.
  int fsync_failures = 0;
};

class MemStorage final : public Storage {
 public:
  bool read(const std::string& name, std::vector<std::byte>& out) override;
  bool append(const std::string& name,
              std::span<const std::byte> data) override;
  bool write_atomic(const std::string& name,
                    std::span<const std::byte> data) override;
  bool truncate(const std::string& name, std::uint64_t size) override;
  bool sync(const std::string& name) override;
  bool remove(const std::string& name) override;
  [[nodiscard]] bool exists(const std::string& name) const override;

  // --- fault injection ----------------------------------------------------
  StorageFaults& faults() { return faults_; }
  /// Media corruption: flip bit (index mod file bits) of `name`. Returns
  /// false if the file is missing or empty.
  bool flip_bit(const std::string& name, std::uint64_t bit_index);
  /// Power-loss model: every file loses its unsynced suffix. Called by the
  /// harness when the owning process crashes.
  void crash();

  /// Bytes currently held for `name` (0 if absent) — test introspection.
  [[nodiscard]] std::uint64_t size(const std::string& name) const;
  [[nodiscard]] std::uint64_t synced_size(const std::string& name) const;

 private:
  struct File {
    std::vector<std::byte> data;
    std::uint64_t synced = 0;  ///< prefix guaranteed to survive crash()
  };
  std::map<std::string, File> files_;
  StorageFaults faults_;
};

/// POSIX directory backend. The directory is created on construction.
/// No fault injection — real disks supply their own.
class FileStorage final : public Storage {
 public:
  explicit FileStorage(std::string dir);

  bool read(const std::string& name, std::vector<std::byte>& out) override;
  bool append(const std::string& name,
              std::span<const std::byte> data) override;
  bool write_atomic(const std::string& name,
                    std::span<const std::byte> data) override;
  bool truncate(const std::string& name, std::uint64_t size) override;
  bool sync(const std::string& name) override;
  bool remove(const std::string& name) override;
  [[nodiscard]] bool exists(const std::string& name) const override;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  [[nodiscard]] std::string path(const std::string& name) const;
  std::string dir_;
};

}  // namespace tw::store
