#include "store/record_log.hpp"

#include "util/bytes.hpp"
#include "util/crc32.hpp"

namespace tw::store {

namespace {

constexpr std::byte kMagic{0xA7};
constexpr std::size_t kHeader = 1 + 4 + 4;  // magic + len + crc

std::uint32_t le32(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

LogOpenStats RecordLog::open(std::vector<std::vector<std::byte>>& records) {
  LogOpenStats stats;
  std::vector<std::byte> data;
  if (!backend_.read(name_, data)) return stats;

  std::size_t pos = 0;
  std::size_t good_end = 0;  // end of the last accepted frame
  while (pos < data.size()) {
    if (data[pos] == kMagic && pos + kHeader <= data.size()) {
      const std::uint32_t len = le32(&data[pos + 1]);
      const std::uint32_t crc = le32(&data[pos + 5]);
      if (len <= data.size() - pos - kHeader) {
        const std::span<const std::byte> payload(&data[pos + kHeader], len);
        if (util::crc32c(payload) == crc) {
          records.emplace_back(payload.begin(), payload.end());
          ++stats.records;
          stats.skipped_bytes += pos - good_end;
          pos += kHeader + len;
          good_end = pos;
          continue;
        }
      }
    }
    ++pos;  // resynchronize on the next candidate magic byte
  }
  // Everything past the last good frame is a torn tail: cut it off so
  // future appends land on a frame boundary.
  if (good_end < data.size()) {
    stats.truncated_bytes = data.size() - good_end;
    backend_.truncate(name_, good_end);
    backend_.sync(name_);
  }
  return stats;
}

bool RecordLog::append(std::span<const std::byte> payload) {
  // One frame = one backend append, so an injected torn write models a
  // single crashed disk write keeping a prefix of the frame.
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(kMagic));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(util::crc32c(payload));
  for (const std::byte b : payload) w.u8(static_cast<std::uint8_t>(b));
  const std::vector<std::byte> frame = std::move(w).take();
  const bool ok = backend_.append(name_, frame);
  return backend_.sync(name_) && ok;
}

bool RecordLog::reset() {
  const bool ok = backend_.truncate(name_, 0);
  return backend_.sync(name_) && ok;
}

}  // namespace tw::store
