file(REMOVE_RECURSE
  "CMakeFiles/scenario_fsm_timing.dir/scenario_fsm_timing.cpp.o"
  "CMakeFiles/scenario_fsm_timing.dir/scenario_fsm_timing.cpp.o.d"
  "scenario_fsm_timing"
  "scenario_fsm_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_fsm_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
