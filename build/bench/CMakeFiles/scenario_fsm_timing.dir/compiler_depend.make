# Empty compiler generated dependencies file for scenario_fsm_timing.
# This may be replaced when dependencies are built.
