# Empty dependencies file for scenario_join_recovery.
# This may be replaced when dependencies are built.
