file(REMOVE_RECURSE
  "CMakeFiles/scenario_join_recovery.dir/scenario_join_recovery.cpp.o"
  "CMakeFiles/scenario_join_recovery.dir/scenario_join_recovery.cpp.o.d"
  "scenario_join_recovery"
  "scenario_join_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_join_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
