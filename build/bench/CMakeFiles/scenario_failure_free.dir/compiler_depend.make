# Empty compiler generated dependencies file for scenario_failure_free.
# This may be replaced when dependencies are built.
