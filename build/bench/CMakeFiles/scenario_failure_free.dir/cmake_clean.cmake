file(REMOVE_RECURSE
  "CMakeFiles/scenario_failure_free.dir/scenario_failure_free.cpp.o"
  "CMakeFiles/scenario_failure_free.dir/scenario_failure_free.cpp.o.d"
  "scenario_failure_free"
  "scenario_failure_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_failure_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
