# Empty dependencies file for scenario_multi_failure.
# This may be replaced when dependencies are built.
