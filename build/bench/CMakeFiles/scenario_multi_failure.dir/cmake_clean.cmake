file(REMOVE_RECURSE
  "CMakeFiles/scenario_multi_failure.dir/scenario_multi_failure.cpp.o"
  "CMakeFiles/scenario_multi_failure.dir/scenario_multi_failure.cpp.o.d"
  "scenario_multi_failure"
  "scenario_multi_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_multi_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
