file(REMOVE_RECURSE
  "CMakeFiles/scenario_broadcast_semantics.dir/scenario_broadcast_semantics.cpp.o"
  "CMakeFiles/scenario_broadcast_semantics.dir/scenario_broadcast_semantics.cpp.o.d"
  "scenario_broadcast_semantics"
  "scenario_broadcast_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_broadcast_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
