# Empty dependencies file for scenario_broadcast_semantics.
# This may be replaced when dependencies are built.
