# Empty compiler generated dependencies file for scenario_single_failure.
# This may be replaced when dependencies are built.
