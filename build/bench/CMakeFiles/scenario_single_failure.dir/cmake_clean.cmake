file(REMOVE_RECURSE
  "CMakeFiles/scenario_single_failure.dir/scenario_single_failure.cpp.o"
  "CMakeFiles/scenario_single_failure.dir/scenario_single_failure.cpp.o.d"
  "scenario_single_failure"
  "scenario_single_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_single_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
