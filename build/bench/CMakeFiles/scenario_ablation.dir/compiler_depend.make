# Empty compiler generated dependencies file for scenario_ablation.
# This may be replaced when dependencies are built.
