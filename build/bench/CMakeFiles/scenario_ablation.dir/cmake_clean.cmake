file(REMOVE_RECURSE
  "CMakeFiles/scenario_ablation.dir/scenario_ablation.cpp.o"
  "CMakeFiles/scenario_ablation.dir/scenario_ablation.cpp.o.d"
  "scenario_ablation"
  "scenario_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
