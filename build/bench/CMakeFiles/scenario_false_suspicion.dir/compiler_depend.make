# Empty compiler generated dependencies file for scenario_false_suspicion.
# This may be replaced when dependencies are built.
