file(REMOVE_RECURSE
  "CMakeFiles/scenario_false_suspicion.dir/scenario_false_suspicion.cpp.o"
  "CMakeFiles/scenario_false_suspicion.dir/scenario_false_suspicion.cpp.o.d"
  "scenario_false_suspicion"
  "scenario_false_suspicion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_false_suspicion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
