# Empty compiler generated dependencies file for bench_thread_vs_event.
# This may be replaced when dependencies are built.
