file(REMOVE_RECURSE
  "CMakeFiles/bench_thread_vs_event.dir/bench_thread_vs_event.cpp.o"
  "CMakeFiles/bench_thread_vs_event.dir/bench_thread_vs_event.cpp.o.d"
  "bench_thread_vs_event"
  "bench_thread_vs_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thread_vs_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
