# CMake generated Testfile for 
# Source directory: /root/repo/src/clocksync
# Build directory: /root/repo/build/src/clocksync
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
