# Empty compiler generated dependencies file for tw_clocksync.
# This may be replaced when dependencies are built.
