file(REMOVE_RECURSE
  "libtw_clocksync.a"
)
