file(REMOVE_RECURSE
  "CMakeFiles/tw_clocksync.dir/clock_sync.cpp.o"
  "CMakeFiles/tw_clocksync.dir/clock_sync.cpp.o.d"
  "libtw_clocksync.a"
  "libtw_clocksync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
