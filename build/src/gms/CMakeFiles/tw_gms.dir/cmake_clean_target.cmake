file(REMOVE_RECURSE
  "libtw_gms.a"
)
