file(REMOVE_RECURSE
  "CMakeFiles/tw_gms.dir/failure_detector.cpp.o"
  "CMakeFiles/tw_gms.dir/failure_detector.cpp.o.d"
  "CMakeFiles/tw_gms.dir/messages.cpp.o"
  "CMakeFiles/tw_gms.dir/messages.cpp.o.d"
  "CMakeFiles/tw_gms.dir/repair.cpp.o"
  "CMakeFiles/tw_gms.dir/repair.cpp.o.d"
  "CMakeFiles/tw_gms.dir/sim_harness.cpp.o"
  "CMakeFiles/tw_gms.dir/sim_harness.cpp.o.d"
  "CMakeFiles/tw_gms.dir/timewheel_node.cpp.o"
  "CMakeFiles/tw_gms.dir/timewheel_node.cpp.o.d"
  "libtw_gms.a"
  "libtw_gms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_gms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
