# Empty dependencies file for tw_gms.
# This may be replaced when dependencies are built.
