file(REMOVE_RECURSE
  "libtw_evl.a"
)
