# Empty dependencies file for tw_evl.
# This may be replaced when dependencies are built.
