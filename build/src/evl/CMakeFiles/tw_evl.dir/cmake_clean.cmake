file(REMOVE_RECURSE
  "CMakeFiles/tw_evl.dir/dispatch.cpp.o"
  "CMakeFiles/tw_evl.dir/dispatch.cpp.o.d"
  "CMakeFiles/tw_evl.dir/event_loop.cpp.o"
  "CMakeFiles/tw_evl.dir/event_loop.cpp.o.d"
  "libtw_evl.a"
  "libtw_evl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_evl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
