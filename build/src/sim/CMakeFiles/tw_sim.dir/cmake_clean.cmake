file(REMOVE_RECURSE
  "CMakeFiles/tw_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tw_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tw_sim.dir/network.cpp.o"
  "CMakeFiles/tw_sim.dir/network.cpp.o.d"
  "CMakeFiles/tw_sim.dir/process_service.cpp.o"
  "CMakeFiles/tw_sim.dir/process_service.cpp.o.d"
  "CMakeFiles/tw_sim.dir/random.cpp.o"
  "CMakeFiles/tw_sim.dir/random.cpp.o.d"
  "CMakeFiles/tw_sim.dir/simulator.cpp.o"
  "CMakeFiles/tw_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/tw_sim.dir/trace.cpp.o"
  "CMakeFiles/tw_sim.dir/trace.cpp.o.d"
  "libtw_sim.a"
  "libtw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
