file(REMOVE_RECURSE
  "libtw_net.a"
)
