
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/sim_transport.cpp" "src/net/CMakeFiles/tw_net.dir/sim_transport.cpp.o" "gcc" "src/net/CMakeFiles/tw_net.dir/sim_transport.cpp.o.d"
  "/root/repo/src/net/udp_transport.cpp" "src/net/CMakeFiles/tw_net.dir/udp_transport.cpp.o" "gcc" "src/net/CMakeFiles/tw_net.dir/udp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/evl/CMakeFiles/tw_evl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
