file(REMOVE_RECURSE
  "CMakeFiles/tw_net.dir/sim_transport.cpp.o"
  "CMakeFiles/tw_net.dir/sim_transport.cpp.o.d"
  "CMakeFiles/tw_net.dir/udp_transport.cpp.o"
  "CMakeFiles/tw_net.dir/udp_transport.cpp.o.d"
  "libtw_net.a"
  "libtw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
