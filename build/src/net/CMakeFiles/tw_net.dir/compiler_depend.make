# Empty compiler generated dependencies file for tw_net.
# This may be replaced when dependencies are built.
