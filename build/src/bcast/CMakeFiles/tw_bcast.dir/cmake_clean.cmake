file(REMOVE_RECURSE
  "CMakeFiles/tw_bcast.dir/delivery.cpp.o"
  "CMakeFiles/tw_bcast.dir/delivery.cpp.o.d"
  "CMakeFiles/tw_bcast.dir/messages.cpp.o"
  "CMakeFiles/tw_bcast.dir/messages.cpp.o.d"
  "CMakeFiles/tw_bcast.dir/oal.cpp.o"
  "CMakeFiles/tw_bcast.dir/oal.cpp.o.d"
  "libtw_bcast.a"
  "libtw_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
