file(REMOVE_RECURSE
  "libtw_bcast.a"
)
