# Empty compiler generated dependencies file for tw_bcast.
# This may be replaced when dependencies are built.
