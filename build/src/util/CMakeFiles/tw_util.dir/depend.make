# Empty dependencies file for tw_util.
# This may be replaced when dependencies are built.
