file(REMOVE_RECURSE
  "CMakeFiles/tw_util.dir/bytes.cpp.o"
  "CMakeFiles/tw_util.dir/bytes.cpp.o.d"
  "CMakeFiles/tw_util.dir/crc32.cpp.o"
  "CMakeFiles/tw_util.dir/crc32.cpp.o.d"
  "CMakeFiles/tw_util.dir/logging.cpp.o"
  "CMakeFiles/tw_util.dir/logging.cpp.o.d"
  "CMakeFiles/tw_util.dir/stats.cpp.o"
  "CMakeFiles/tw_util.dir/stats.cpp.o.d"
  "libtw_util.a"
  "libtw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
