file(REMOVE_RECURSE
  "libtw_util.a"
)
