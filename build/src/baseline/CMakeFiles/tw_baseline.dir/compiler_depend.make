# Empty compiler generated dependencies file for tw_baseline.
# This may be replaced when dependencies are built.
