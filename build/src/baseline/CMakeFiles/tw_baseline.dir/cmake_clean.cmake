file(REMOVE_RECURSE
  "CMakeFiles/tw_baseline.dir/attendance_ring.cpp.o"
  "CMakeFiles/tw_baseline.dir/attendance_ring.cpp.o.d"
  "CMakeFiles/tw_baseline.dir/heartbeat.cpp.o"
  "CMakeFiles/tw_baseline.dir/heartbeat.cpp.o.d"
  "libtw_baseline.a"
  "libtw_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
