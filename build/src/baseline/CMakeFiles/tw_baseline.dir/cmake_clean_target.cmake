file(REMOVE_RECURSE
  "libtw_baseline.a"
)
