# Empty dependencies file for util_process_set_test.
# This may be replaced when dependencies are built.
