file(REMOVE_RECURSE
  "CMakeFiles/gms_property_test.dir/gms_property_test.cpp.o"
  "CMakeFiles/gms_property_test.dir/gms_property_test.cpp.o.d"
  "gms_property_test"
  "gms_property_test.pdb"
  "gms_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
