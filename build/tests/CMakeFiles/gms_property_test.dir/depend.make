# Empty dependencies file for gms_property_test.
# This may be replaced when dependencies are built.
