file(REMOVE_RECURSE
  "CMakeFiles/bcast_semantics_test.dir/bcast_semantics_test.cpp.o"
  "CMakeFiles/bcast_semantics_test.dir/bcast_semantics_test.cpp.o.d"
  "bcast_semantics_test"
  "bcast_semantics_test.pdb"
  "bcast_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcast_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
