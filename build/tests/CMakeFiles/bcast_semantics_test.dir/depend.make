# Empty dependencies file for bcast_semantics_test.
# This may be replaced when dependencies are built.
