file(REMOVE_RECURSE
  "CMakeFiles/gms_basic_test.dir/gms_basic_test.cpp.o"
  "CMakeFiles/gms_basic_test.dir/gms_basic_test.cpp.o.d"
  "gms_basic_test"
  "gms_basic_test.pdb"
  "gms_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
