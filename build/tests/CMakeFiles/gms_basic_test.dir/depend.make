# Empty dependencies file for gms_basic_test.
# This may be replaced when dependencies are built.
