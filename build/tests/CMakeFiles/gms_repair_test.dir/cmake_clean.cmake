file(REMOVE_RECURSE
  "CMakeFiles/gms_repair_test.dir/gms_repair_test.cpp.o"
  "CMakeFiles/gms_repair_test.dir/gms_repair_test.cpp.o.d"
  "gms_repair_test"
  "gms_repair_test.pdb"
  "gms_repair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
