# Empty dependencies file for gms_repair_test.
# This may be replaced when dependencies are built.
