
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_clock_test.cpp" "tests/CMakeFiles/sim_clock_test.dir/sim_clock_test.cpp.o" "gcc" "tests/CMakeFiles/sim_clock_test.dir/sim_clock_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/evl/CMakeFiles/tw_evl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/clocksync/CMakeFiles/tw_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/bcast/CMakeFiles/tw_bcast.dir/DependInfo.cmake"
  "/root/repo/build/src/gms/CMakeFiles/tw_gms.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tw_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
