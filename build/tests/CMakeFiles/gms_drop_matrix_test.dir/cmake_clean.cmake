file(REMOVE_RECURSE
  "CMakeFiles/gms_drop_matrix_test.dir/gms_drop_matrix_test.cpp.o"
  "CMakeFiles/gms_drop_matrix_test.dir/gms_drop_matrix_test.cpp.o.d"
  "gms_drop_matrix_test"
  "gms_drop_matrix_test.pdb"
  "gms_drop_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_drop_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
