# Empty dependencies file for gms_drop_matrix_test.
# This may be replaced when dependencies are built.
