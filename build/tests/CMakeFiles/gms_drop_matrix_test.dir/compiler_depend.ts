# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gms_drop_matrix_test.
