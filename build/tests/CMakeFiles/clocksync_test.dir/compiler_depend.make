# Empty compiler generated dependencies file for clocksync_test.
# This may be replaced when dependencies are built.
