file(REMOVE_RECURSE
  "CMakeFiles/sim_process_test.dir/sim_process_test.cpp.o"
  "CMakeFiles/sim_process_test.dir/sim_process_test.cpp.o.d"
  "sim_process_test"
  "sim_process_test.pdb"
  "sim_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
