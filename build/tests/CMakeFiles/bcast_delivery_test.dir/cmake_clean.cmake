file(REMOVE_RECURSE
  "CMakeFiles/bcast_delivery_test.dir/bcast_delivery_test.cpp.o"
  "CMakeFiles/bcast_delivery_test.dir/bcast_delivery_test.cpp.o.d"
  "bcast_delivery_test"
  "bcast_delivery_test.pdb"
  "bcast_delivery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcast_delivery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
