# Empty dependencies file for bcast_delivery_test.
# This may be replaced when dependencies are built.
