# Empty compiler generated dependencies file for clocksync_param_test.
# This may be replaced when dependencies are built.
