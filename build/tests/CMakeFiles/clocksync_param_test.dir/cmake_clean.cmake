file(REMOVE_RECURSE
  "CMakeFiles/clocksync_param_test.dir/clocksync_param_test.cpp.o"
  "CMakeFiles/clocksync_param_test.dir/clocksync_param_test.cpp.o.d"
  "clocksync_param_test"
  "clocksync_param_test.pdb"
  "clocksync_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocksync_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
