# Empty dependencies file for gms_failure_test.
# This may be replaced when dependencies are built.
