file(REMOVE_RECURSE
  "CMakeFiles/gms_failure_test.dir/gms_failure_test.cpp.o"
  "CMakeFiles/gms_failure_test.dir/gms_failure_test.cpp.o.d"
  "gms_failure_test"
  "gms_failure_test.pdb"
  "gms_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
