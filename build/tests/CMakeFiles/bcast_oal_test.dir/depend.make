# Empty dependencies file for bcast_oal_test.
# This may be replaced when dependencies are built.
