file(REMOVE_RECURSE
  "CMakeFiles/bcast_oal_test.dir/bcast_oal_test.cpp.o"
  "CMakeFiles/bcast_oal_test.dir/bcast_oal_test.cpp.o.d"
  "bcast_oal_test"
  "bcast_oal_test.pdb"
  "bcast_oal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcast_oal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
