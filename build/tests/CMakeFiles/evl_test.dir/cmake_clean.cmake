file(REMOVE_RECURSE
  "CMakeFiles/evl_test.dir/evl_test.cpp.o"
  "CMakeFiles/evl_test.dir/evl_test.cpp.o.d"
  "evl_test"
  "evl_test.pdb"
  "evl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
