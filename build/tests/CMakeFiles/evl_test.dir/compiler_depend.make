# Empty compiler generated dependencies file for evl_test.
# This may be replaced when dependencies are built.
