file(REMOVE_RECURSE
  "CMakeFiles/gms_timed_test.dir/gms_timed_test.cpp.o"
  "CMakeFiles/gms_timed_test.dir/gms_timed_test.cpp.o.d"
  "gms_timed_test"
  "gms_timed_test.pdb"
  "gms_timed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_timed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
