# Empty dependencies file for gms_timed_test.
# This may be replaced when dependencies are built.
