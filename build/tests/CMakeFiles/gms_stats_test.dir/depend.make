# Empty dependencies file for gms_stats_test.
# This may be replaced when dependencies are built.
