file(REMOVE_RECURSE
  "CMakeFiles/gms_stats_test.dir/gms_stats_test.cpp.o"
  "CMakeFiles/gms_stats_test.dir/gms_stats_test.cpp.o.d"
  "gms_stats_test"
  "gms_stats_test.pdb"
  "gms_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
