file(REMOVE_RECURSE
  "CMakeFiles/gms_units_test.dir/gms_units_test.cpp.o"
  "CMakeFiles/gms_units_test.dir/gms_units_test.cpp.o.d"
  "gms_units_test"
  "gms_units_test.pdb"
  "gms_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
