# Empty dependencies file for gms_units_test.
# This may be replaced when dependencies are built.
