# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_bytes_test[1]_include.cmake")
include("/root/repo/build/tests/util_process_set_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim_clock_test[1]_include.cmake")
include("/root/repo/build/tests/sim_network_test[1]_include.cmake")
include("/root/repo/build/tests/sim_process_test[1]_include.cmake")
include("/root/repo/build/tests/evl_test[1]_include.cmake")
include("/root/repo/build/tests/clocksync_test[1]_include.cmake")
include("/root/repo/build/tests/clocksync_param_test[1]_include.cmake")
include("/root/repo/build/tests/bcast_oal_test[1]_include.cmake")
include("/root/repo/build/tests/bcast_delivery_test[1]_include.cmake")
include("/root/repo/build/tests/gms_repair_test[1]_include.cmake")
include("/root/repo/build/tests/gms_units_test[1]_include.cmake")
include("/root/repo/build/tests/gms_basic_test[1]_include.cmake")
include("/root/repo/build/tests/gms_failure_test[1]_include.cmake")
include("/root/repo/build/tests/gms_property_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/net_transport_test[1]_include.cmake")
include("/root/repo/build/tests/gms_timed_test[1]_include.cmake")
include("/root/repo/build/tests/bcast_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/gms_drop_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/gms_stats_test[1]_include.cmake")
